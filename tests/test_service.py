"""Tests for the sharded execution service (src/repro/service/).

The load-bearing guarantee is *determinism under sharding*: for fixed
seeds, ``jobs=1`` and ``jobs=N`` must produce byte-identical counts and
energies.  Multi-process tests carry the ``slow`` marker (registered in
pytest.ini) but use quick configs so the whole module stays well under
30 s — tier-1 (`pytest -x -q`) runs everything.
"""

import numpy as np
import pytest

from repro.backends import FakeGuadalupe
from repro.backends.result import Counts, ExperimentResult
from repro.core import (
    ExecutionPipeline,
    GateLevelModel,
    HybridGatePulseModel,
    binary_search_mixer_duration,
    train_model,
)
from repro.exceptions import BackendError
from repro.problems import MaxCutProblem, benchmark_graph
from repro.service import (
    CircuitJob,
    ExecutionService,
    ResultStore,
    SweepJob,
    backend_config_digest,
    derive_job_seeds,
    job_fingerprint,
    plan_shards,
)
from repro.utils.cache import cache_stats_totals
from repro.utils.rng import derive_seed
from repro.vqa import ExpectedCutCost
from repro.vqa.optimizers import SPSA

SHOTS = 128


@pytest.fixture(scope="module")
def backend():
    return FakeGuadalupe()


@pytest.fixture(scope="module")
def problem():
    return MaxCutProblem(benchmark_graph(1))


@pytest.fixture(scope="module")
def sweep_circuits(backend, problem):
    """Six routed hybrid-QAOA circuits (pulse gates exercise the
    unitary-provider path through pickling)."""
    model = HybridGatePulseModel(problem, backend.device)
    base = model.initial_point(3)
    pipeline = ExecutionPipeline(
        backend=backend, cost=ExpectedCutCost(problem), shots=SHOTS
    )
    return [
        pipeline.prepare(
            model.build_circuit(np.concatenate([[gamma], base[1:]]))
        )
        for gamma in np.linspace(0.3, 1.5, 6)
    ]


def counts_of(experiments):
    return [dict(e.counts) for e in experiments]


# ---------------------------------------------------------------------------
# shard planner
# ---------------------------------------------------------------------------

class TestShardPlanner:
    def test_covers_all_indices_contiguously(self):
        shards = plan_shards(23, 4, shards_per_worker=3)
        flat = [idx for shard in shards for idx in shard]
        assert flat == list(range(23))
        assert all(shard == sorted(shard) for shard in shards)

    def test_balanced_sizes(self):
        shards = plan_shards(10, 2, shards_per_worker=2)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 10

    def test_oversubscription_for_work_stealing(self):
        # more shards than workers so fast workers can steal
        shards = plan_shards(100, 4, shards_per_worker=4)
        assert 4 < len(shards) <= 16

    def test_never_more_shards_than_jobs(self):
        assert len(plan_shards(3, 8)) == 3

    def test_min_shard_size(self):
        shards = plan_shards(100, 4, shards_per_worker=8, min_shard_size=10)
        assert all(len(s) >= 10 for s in shards)

    def test_empty_and_invalid(self):
        assert plan_shards(0, 4) == []
        with pytest.raises(BackendError):
            plan_shards(4, 0)


# ---------------------------------------------------------------------------
# job specs and seed derivation
# ---------------------------------------------------------------------------

class TestJobSeeds:
    def test_sweep_seed_derivation_rule(self, sweep_circuits):
        sweep = SweepJob(sweep_circuits, shots=SHOTS, seed=17)
        expected = [
            derive_seed(17, "job", i) for i in range(len(sweep_circuits))
        ]
        assert sweep.resolved_seeds() == expected
        assert derive_job_seeds(17, len(sweep_circuits)) == expected
        assert [job.seed for job in sweep.jobs()] == expected

    def test_explicit_seeds_override(self, sweep_circuits):
        seeds = list(range(100, 100 + len(sweep_circuits)))
        sweep = SweepJob(sweep_circuits, shots=SHOTS, seeds=seeds)
        assert [job.seed for job in sweep.jobs()] == seeds

    def test_unseeded_stays_unseeded(self, sweep_circuits):
        sweep = SweepJob(sweep_circuits, shots=SHOTS)
        assert sweep.resolved_seeds() == [None] * len(sweep_circuits)

    def test_seed_count_mismatch(self, sweep_circuits):
        with pytest.raises(BackendError):
            SweepJob(sweep_circuits, seeds=[1]).resolved_seeds()

    def test_shots_must_be_positive(self, sweep_circuits):
        with pytest.raises(BackendError):
            CircuitJob(sweep_circuits[0], shots=0)


class TestFingerprint:
    def test_stable_and_sensitive(self, sweep_circuits):
        job = CircuitJob(sweep_circuits[0], shots=SHOTS, seed=3)
        key = job_fingerprint(job, "ibmq_guadalupe")
        assert key == job_fingerprint(job, "ibmq_guadalupe")
        assert len(key) == 64
        # every content dimension moves the hash
        others = [
            CircuitJob(sweep_circuits[1], shots=SHOTS, seed=3),
            CircuitJob(sweep_circuits[0], shots=SHOTS + 1, seed=3),
            CircuitJob(sweep_circuits[0], shots=SHOTS, seed=4),
            CircuitJob(
                sweep_circuits[0], shots=SHOTS, seed=3, with_noise=False
            ),
        ]
        for other in others:
            assert job_fingerprint(other, "ibmq_guadalupe") != key
        assert job_fingerprint(job, "ibmq_toronto") != key

    def test_unseeded_is_not_storable(self, sweep_circuits):
        job = CircuitJob(sweep_circuits[0], shots=SHOTS, seed=None)
        assert job_fingerprint(job, "ibmq_guadalupe") is None

    def test_parameterized_circuit_is_not_storable(self, problem):
        from repro.circuits import Parameter, QuantumCircuit

        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("theta"), 0)
        job = CircuitJob(circuit, shots=SHOTS, seed=1)
        assert job_fingerprint(job, "ibmq_guadalupe") is None

    def test_config_digest_separates_modified_backends(self):
        stock = FakeGuadalupe()
        modified = FakeGuadalupe()
        modified.noise_model.pulse_jitter_local = 0.5
        assert backend_config_digest(stock) == backend_config_digest(
            FakeGuadalupe()
        )
        assert backend_config_digest(stock) != backend_config_digest(
            modified
        )

    def test_config_digest_ignores_warmed_caches(
        self, backend, sweep_circuits
    ):
        fresh = FakeGuadalupe()
        # `backend` has executed many sweeps this module; its caches are
        # warm but its physics configuration is stock
        assert backend_config_digest(backend) == backend_config_digest(
            fresh
        )


# ---------------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        experiment = ExperimentResult(
            Counts({"00": 70, "11": 58}),
            duration=4512,
            metadata={
                "active_qubits": [0, 1, 4],
                "measured_qubits": [0, 1],
                "clbit_to_qubit": {0: 0, 1: 1},
                "weights": np.linspace(0.0, 1.0, 5),
            },
        )
        key = "ab" + "0" * 62
        store.put(key, experiment)
        assert key in store
        loaded = store.get(key)
        assert dict(loaded.counts) == {"00": 70, "11": 58}
        assert loaded.duration == 4512
        assert loaded.metadata["active_qubits"] == [0, 1, 4]
        assert loaded.metadata["clbit_to_qubit"] == {0: 0, 1: 1}
        np.testing.assert_array_equal(
            loaded.metadata["weights"], np.linspace(0.0, 1.0, 5)
        )
        assert store.stats()["entries"] == 1

    def test_miss_and_clear(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("cd" + "0" * 62) is None
        store.put(
            "ef" + "0" * 62,
            ExperimentResult(Counts({"0": SHOTS}), 100),
        )
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(BackendError):
            store.get("../escape")

    def test_float_metadata_survives_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "aa" + "1" * 62
        store.put(
            key,
            ExperimentResult(
                Counts({"0": SHOTS}),
                100,
                metadata={"angles": [0.98, 1.02], "scale": 0.5},
            ),
        )
        loaded = store.get(key)
        assert loaded.metadata["angles"] == [0.98, 1.02]
        assert loaded.metadata["scale"] == 0.5

    def test_unstorable_metadata_raises_backend_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(BackendError):
            store.put(
                "bb" + "1" * 62,
                ExperimentResult(
                    Counts({"0": SHOTS}),
                    100,
                    metadata={"bad": [object()]},
                ),
            )

    def test_served_from_disk_not_recomputed(
        self, tmp_path, backend, sweep_circuits
    ):
        store = ResultStore(tmp_path / "store")
        with ExecutionService(backend, jobs=1, store=store) as service:
            sweep = SweepJob(sweep_circuits[:3], shots=SHOTS, seed=5)
            first = service.map(sweep)
            ran_after_first = service.stats()["jobs_run"]
            second = service.map(SweepJob(sweep_circuits[:3], shots=SHOTS, seed=5))
            assert service.stats()["jobs_run"] == ran_after_first
            assert service.stats()["store_hits"] == 3
        assert counts_of(first) == counts_of(second)


# ---------------------------------------------------------------------------
# determinism under sharding (the acceptance-critical guarantee)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestShardingDeterminism:
    def test_counts_identical_jobs1_vs_jobs4(
        self, backend, sweep_circuits
    ):
        seeds = list(range(len(sweep_circuits)))
        serial = backend.run(sweep_circuits, shots=SHOTS, seeds=seeds)
        sharded = backend.run(
            sweep_circuits, shots=SHOTS, seeds=seeds, jobs=4
        )
        assert counts_of(serial.experiments) == counts_of(
            sharded.experiments
        )
        durations = [e.duration for e in serial.experiments]
        assert [e.duration for e in sharded.experiments] == durations
        meta = sharded.metadata["service"]
        assert meta["jobs"] == len(sweep_circuits)
        assert meta["workers"] == 4
        assert meta["per_worker"]  # at least one worker reported stats
        for totals in meta["per_worker"].values():
            assert {"hits", "misses", "caches"} <= set(totals)
        backend.close_services()

    def test_modified_backend_identical_across_jobs(self):
        # in-place customizations must survive the process boundary:
        # workers receive a pickle of the live backend, never a stock
        # rebuild by name
        modified = FakeGuadalupe()
        modified.noise_model.pulse_jitter_local = 0.08
        problem = MaxCutProblem(benchmark_graph(1))
        model = HybridGatePulseModel(problem, modified.device)
        base = model.initial_point(3)
        pipeline = ExecutionPipeline(
            backend=modified,
            cost=ExpectedCutCost(problem),
            shots=SHOTS,
        )
        circuits = [
            pipeline.prepare(
                model.build_circuit(np.concatenate([[g], base[1:]]))
            )
            for g in np.linspace(0.4, 1.0, 4)
        ]
        seeds = list(range(4))
        serial = modified.run(circuits, shots=SHOTS, seeds=seeds)
        sharded = modified.run(
            circuits, shots=SHOTS, seeds=seeds, jobs=2
        )
        assert counts_of(serial.experiments) == counts_of(
            sharded.experiments
        )
        modified.close_services()

    def test_energies_identical_through_pipeline(
        self, backend, problem
    ):
        model = GateLevelModel(problem)
        base = model.initial_point(5)
        circuits = [
            model.build_circuit(
                np.concatenate([[gamma], base[1:]])
            )
            for gamma in np.linspace(0.2, 1.2, 6)
        ]
        seeds = [derive_seed(9, "sweep", i) for i in range(6)]

        def run(jobs):
            pipeline = ExecutionPipeline(
                backend=backend,
                cost=ExpectedCutCost(problem),
                shots=SHOTS,
                jobs=jobs,
            )
            return pipeline.evaluate_many(circuits, seeds=seeds)

        serial = run(1)
        sharded = run(4)
        assert [v for v, _ in serial] == [v for v, _ in sharded]
        assert [i["raw_counts"] for _, i in serial] == [
            i["raw_counts"] for _, i in sharded
        ]
        backend.close_services()

    def test_spsa_training_identical_across_jobs(
        self, backend, problem
    ):
        def train(jobs):
            pipeline = ExecutionPipeline(
                backend=backend,
                cost=ExpectedCutCost(problem),
                shots=SHOTS,
                jobs=jobs,
            )
            return train_model(
                GateLevelModel(problem),
                pipeline,
                SPSA(maxiter=3, seed=11),
                seed=23,
            )

        serial = train(1)
        sharded = train(2)
        assert serial.best_value == sharded.best_value
        np.testing.assert_array_equal(
            serial.best_parameters, sharded.best_parameters
        )
        assert serial.trace.values == sharded.trace.values
        backend.close_services()

    def test_duration_search_identical_across_jobs(
        self, backend, problem
    ):
        model = HybridGatePulseModel(problem, backend.device)
        parameters = np.asarray(model.initial_point(4), dtype=float)
        pipeline = ExecutionPipeline(
            backend=backend,
            cost=ExpectedCutCost(problem),
            shots=SHOTS,
        )
        serial = binary_search_mixer_duration(
            model, pipeline, parameters, seed=31
        )
        sharded = binary_search_mixer_duration(
            model, pipeline, parameters, seed=31, jobs=3
        )
        assert serial.duration == sharded.duration
        assert serial.evaluations == sharded.evaluations
        assert serial.infeasible == sharded.infeasible
        backend.close_services()


# ---------------------------------------------------------------------------
# futures API: submit / as_completed / backpressure / shutdown
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestFuturesAPI:
    def test_submit_and_as_completed(self, backend, sweep_circuits):
        sweep = SweepJob(sweep_circuits, shots=SHOTS, seed=13)
        with ExecutionService(backend, jobs=2) as service:
            futures = [service.submit(job) for job in sweep.jobs()]
            done = list(service.as_completed(futures, timeout=60))
            assert set(done) == set(futures)
            ordered = [f.result() for f in futures]
        reference = backend.run(
            sweep_circuits, shots=SHOTS, seeds=sweep.resolved_seeds()
        )
        assert counts_of(ordered) == counts_of(reference.experiments)

    def test_backpressure_bounds_in_flight_jobs(
        self, backend, sweep_circuits
    ):
        with ExecutionService(
            backend, jobs=2, max_pending=2
        ) as service:
            futures = [
                service.submit(job)
                for job in SweepJob(
                    sweep_circuits, shots=SHOTS, seed=3
                ).jobs()
            ]
            results = [f.result() for f in futures]
        assert len(results) == len(sweep_circuits)
        assert service.stats()["max_pending_seen"] <= 2
        assert service.stats()["pending"] == 0

    def test_map_respects_backpressure_bound(
        self, backend, sweep_circuits
    ):
        with ExecutionService(
            backend, jobs=2, max_pending=2
        ) as service:
            service.map(SweepJob(sweep_circuits, shots=SHOTS, seed=3))
            assert service.stats()["max_pending_seen"] <= 2

    def test_shutdown_rejects_new_work(self, backend, sweep_circuits):
        service = ExecutionService(backend, jobs=2)
        service.shutdown()
        with pytest.raises(BackendError):
            service.submit(
                CircuitJob(sweep_circuits[0], shots=SHOTS, seed=1)
            )

    def test_inline_fallback_matches_pool(
        self, backend, sweep_circuits
    ):
        sweep = SweepJob(sweep_circuits[:3], shots=SHOTS, seed=29)
        with ExecutionService(backend, jobs=1) as inline:
            inline_results = inline.map(sweep)
            # inline mode reports the in-process cache totals uniformly
            assert "inline" in inline.stats()["per_worker"]
        with ExecutionService(backend, jobs=2) as pooled:
            pooled_results = pooled.map(
                SweepJob(sweep_circuits[:3], shots=SHOTS, seed=29)
            )
        assert counts_of(inline_results) == counts_of(pooled_results)


# ---------------------------------------------------------------------------
# cache statistics plumbing
# ---------------------------------------------------------------------------

def test_cache_stats_totals_shape():
    totals = cache_stats_totals()
    assert set(totals) == {"hits", "misses", "caches"}
    assert totals["hits"] >= 0 and totals["misses"] >= 0
