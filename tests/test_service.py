"""Tests for the sharded execution service (src/repro/service/).

The load-bearing guarantee is *determinism under sharding*: for fixed
seeds, ``jobs=1`` and ``jobs=N`` must produce byte-identical counts and
energies.  Multi-process tests carry the ``slow`` marker (registered in
pytest.ini) but use quick configs so the whole module stays well under
30 s — tier-1 (`pytest -x -q`) runs everything.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.backends import FakeGuadalupe
from repro.backends.result import Counts, ExperimentResult
from repro.core import (
    ExecutionPipeline,
    GateLevelModel,
    HybridGatePulseModel,
    binary_search_mixer_duration,
    train_model,
)
from repro.backends.engine import classify_error
from repro.exceptions import (
    BackendError,
    QuarantineError,
    ReproError,
    TransientError,
)
from repro.problems import MaxCutProblem, benchmark_graph
from repro.service import (
    CircuitJob,
    ExecutionService,
    FaultInjected,
    FaultPolicy,
    FaultRule,
    JobFailure,
    PermanentFaultInjected,
    ResultStore,
    SweepJob,
    backend_config_digest,
    derive_job_seeds,
    job_fingerprint,
    plan_shards,
)
from repro.utils.cache import cache_stats_totals
from repro.utils.rng import derive_seed
from repro.vqa import ExpectedCutCost
from repro.vqa.optimizers import SPSA

SHOTS = 128


@pytest.fixture(scope="module")
def backend():
    return FakeGuadalupe()


@pytest.fixture(scope="module")
def problem():
    return MaxCutProblem(benchmark_graph(1))


@pytest.fixture(scope="module")
def sweep_circuits(backend, problem):
    """Six routed hybrid-QAOA circuits (pulse gates exercise the
    unitary-provider path through pickling)."""
    model = HybridGatePulseModel(problem, backend.device)
    base = model.initial_point(3)
    pipeline = ExecutionPipeline(
        backend=backend, cost=ExpectedCutCost(problem), shots=SHOTS
    )
    return [
        pipeline.prepare(
            model.build_circuit(np.concatenate([[gamma], base[1:]]))
        )
        for gamma in np.linspace(0.3, 1.5, 6)
    ]


def counts_of(experiments):
    return [dict(e.counts) for e in experiments]


# ---------------------------------------------------------------------------
# shard planner
# ---------------------------------------------------------------------------

class TestShardPlanner:
    def test_covers_all_indices_contiguously(self):
        shards = plan_shards(23, 4, shards_per_worker=3)
        flat = [idx for shard in shards for idx in shard]
        assert flat == list(range(23))
        assert all(shard == sorted(shard) for shard in shards)

    def test_balanced_sizes(self):
        shards = plan_shards(10, 2, shards_per_worker=2)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 10

    def test_oversubscription_for_work_stealing(self):
        # more shards than workers so fast workers can steal
        shards = plan_shards(100, 4, shards_per_worker=4)
        assert 4 < len(shards) <= 16

    def test_never_more_shards_than_jobs(self):
        assert len(plan_shards(3, 8)) == 3

    def test_min_shard_size(self):
        shards = plan_shards(100, 4, shards_per_worker=8, min_shard_size=10)
        assert all(len(s) >= 10 for s in shards)

    def test_empty_and_invalid(self):
        assert plan_shards(0, 4) == []
        with pytest.raises(BackendError):
            plan_shards(4, 0)


# ---------------------------------------------------------------------------
# job specs and seed derivation
# ---------------------------------------------------------------------------

class TestJobSeeds:
    def test_sweep_seed_derivation_rule(self, sweep_circuits):
        sweep = SweepJob(sweep_circuits, shots=SHOTS, seed=17)
        expected = [
            derive_seed(17, "job", i) for i in range(len(sweep_circuits))
        ]
        assert sweep.resolved_seeds() == expected
        assert derive_job_seeds(17, len(sweep_circuits)) == expected
        assert [job.seed for job in sweep.jobs()] == expected

    def test_explicit_seeds_override(self, sweep_circuits):
        seeds = list(range(100, 100 + len(sweep_circuits)))
        sweep = SweepJob(sweep_circuits, shots=SHOTS, seeds=seeds)
        assert [job.seed for job in sweep.jobs()] == seeds

    def test_unseeded_stays_unseeded(self, sweep_circuits):
        sweep = SweepJob(sweep_circuits, shots=SHOTS)
        assert sweep.resolved_seeds() == [None] * len(sweep_circuits)

    def test_seed_count_mismatch(self, sweep_circuits):
        with pytest.raises(BackendError):
            SweepJob(sweep_circuits, seeds=[1]).resolved_seeds()

    def test_shots_must_be_positive(self, sweep_circuits):
        with pytest.raises(BackendError):
            CircuitJob(sweep_circuits[0], shots=0)


class TestFingerprint:
    def test_stable_and_sensitive(self, sweep_circuits):
        job = CircuitJob(sweep_circuits[0], shots=SHOTS, seed=3)
        key = job_fingerprint(job, "ibmq_guadalupe")
        assert key == job_fingerprint(job, "ibmq_guadalupe")
        assert len(key) == 64
        # every content dimension moves the hash
        others = [
            CircuitJob(sweep_circuits[1], shots=SHOTS, seed=3),
            CircuitJob(sweep_circuits[0], shots=SHOTS + 1, seed=3),
            CircuitJob(sweep_circuits[0], shots=SHOTS, seed=4),
            CircuitJob(
                sweep_circuits[0], shots=SHOTS, seed=3, with_noise=False
            ),
        ]
        for other in others:
            assert job_fingerprint(other, "ibmq_guadalupe") != key
        assert job_fingerprint(job, "ibmq_toronto") != key

    def test_unseeded_is_not_storable(self, sweep_circuits):
        job = CircuitJob(sweep_circuits[0], shots=SHOTS, seed=None)
        assert job_fingerprint(job, "ibmq_guadalupe") is None

    def test_parameterized_circuit_is_not_storable(self, problem):
        from repro.circuits import Parameter, QuantumCircuit

        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("theta"), 0)
        job = CircuitJob(circuit, shots=SHOTS, seed=1)
        assert job_fingerprint(job, "ibmq_guadalupe") is None

    def test_config_digest_separates_modified_backends(self):
        stock = FakeGuadalupe()
        modified = FakeGuadalupe()
        modified.noise_model.pulse_jitter_local = 0.5
        assert backend_config_digest(stock) == backend_config_digest(
            FakeGuadalupe()
        )
        assert backend_config_digest(stock) != backend_config_digest(
            modified
        )

    def test_config_digest_ignores_warmed_caches(
        self, backend, sweep_circuits
    ):
        fresh = FakeGuadalupe()
        # `backend` has executed many sweeps this module; its caches are
        # warm but its physics configuration is stock
        assert backend_config_digest(backend) == backend_config_digest(
            fresh
        )


# ---------------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        experiment = ExperimentResult(
            Counts({"00": 70, "11": 58}),
            duration=4512,
            metadata={
                "active_qubits": [0, 1, 4],
                "measured_qubits": [0, 1],
                "clbit_to_qubit": {0: 0, 1: 1},
                "weights": np.linspace(0.0, 1.0, 5),
            },
        )
        key = "ab" + "0" * 62
        store.put(key, experiment)
        assert key in store
        loaded = store.get(key)
        assert dict(loaded.counts) == {"00": 70, "11": 58}
        assert loaded.duration == 4512
        assert loaded.metadata["active_qubits"] == [0, 1, 4]
        assert loaded.metadata["clbit_to_qubit"] == {0: 0, 1: 1}
        np.testing.assert_array_equal(
            loaded.metadata["weights"], np.linspace(0.0, 1.0, 5)
        )
        assert store.stats()["entries"] == 1

    def test_miss_and_clear(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("cd" + "0" * 62) is None
        store.put(
            "ef" + "0" * 62,
            ExperimentResult(Counts({"0": SHOTS}), 100),
        )
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(BackendError):
            store.get("../escape")

    def test_float_metadata_survives_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "aa" + "1" * 62
        store.put(
            key,
            ExperimentResult(
                Counts({"0": SHOTS}),
                100,
                metadata={"angles": [0.98, 1.02], "scale": 0.5},
            ),
        )
        loaded = store.get(key)
        assert loaded.metadata["angles"] == [0.98, 1.02]
        assert loaded.metadata["scale"] == 0.5

    def test_unstorable_metadata_raises_backend_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(BackendError):
            store.put(
                "bb" + "1" * 62,
                ExperimentResult(
                    Counts({"0": SHOTS}),
                    100,
                    metadata={"bad": [object()]},
                ),
            )

    def test_served_from_disk_not_recomputed(
        self, tmp_path, backend, sweep_circuits
    ):
        store = ResultStore(tmp_path / "store")
        with ExecutionService(backend, jobs=1, store=store) as service:
            sweep = SweepJob(sweep_circuits[:3], shots=SHOTS, seed=5)
            first = service.map(sweep)
            ran_after_first = service.stats()["jobs_run"]
            second = service.map(SweepJob(sweep_circuits[:3], shots=SHOTS, seed=5))
            assert service.stats()["jobs_run"] == ran_after_first
            assert service.stats()["store_hits"] == 3
        assert counts_of(first) == counts_of(second)


# ---------------------------------------------------------------------------
# determinism under sharding (the acceptance-critical guarantee)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestShardingDeterminism:
    def test_counts_identical_jobs1_vs_jobs4(
        self, backend, sweep_circuits
    ):
        seeds = list(range(len(sweep_circuits)))
        serial = backend.run(sweep_circuits, shots=SHOTS, seeds=seeds)
        sharded = backend.run(
            sweep_circuits, shots=SHOTS, seeds=seeds, jobs=4
        )
        assert counts_of(serial.experiments) == counts_of(
            sharded.experiments
        )
        durations = [e.duration for e in serial.experiments]
        assert [e.duration for e in sharded.experiments] == durations
        meta = sharded.metadata["service"]
        assert meta["jobs"] == len(sweep_circuits)
        assert meta["workers"] == 4
        assert meta["per_worker"]  # at least one worker reported stats
        for totals in meta["per_worker"].values():
            assert {"hits", "misses", "caches"} <= set(totals)
        backend.close_services()

    def test_modified_backend_identical_across_jobs(self):
        # in-place customizations must survive the process boundary:
        # workers receive a pickle of the live backend, never a stock
        # rebuild by name
        modified = FakeGuadalupe()
        modified.noise_model.pulse_jitter_local = 0.08
        problem = MaxCutProblem(benchmark_graph(1))
        model = HybridGatePulseModel(problem, modified.device)
        base = model.initial_point(3)
        pipeline = ExecutionPipeline(
            backend=modified,
            cost=ExpectedCutCost(problem),
            shots=SHOTS,
        )
        circuits = [
            pipeline.prepare(
                model.build_circuit(np.concatenate([[g], base[1:]]))
            )
            for g in np.linspace(0.4, 1.0, 4)
        ]
        seeds = list(range(4))
        serial = modified.run(circuits, shots=SHOTS, seeds=seeds)
        sharded = modified.run(
            circuits, shots=SHOTS, seeds=seeds, jobs=2
        )
        assert counts_of(serial.experiments) == counts_of(
            sharded.experiments
        )
        modified.close_services()

    def test_energies_identical_through_pipeline(
        self, backend, problem
    ):
        model = GateLevelModel(problem)
        base = model.initial_point(5)
        circuits = [
            model.build_circuit(
                np.concatenate([[gamma], base[1:]])
            )
            for gamma in np.linspace(0.2, 1.2, 6)
        ]
        seeds = [derive_seed(9, "sweep", i) for i in range(6)]

        def run(jobs):
            pipeline = ExecutionPipeline(
                backend=backend,
                cost=ExpectedCutCost(problem),
                shots=SHOTS,
                jobs=jobs,
            )
            return pipeline.evaluate_many(circuits, seeds=seeds)

        serial = run(1)
        sharded = run(4)
        assert [v for v, _ in serial] == [v for v, _ in sharded]
        assert [i["raw_counts"] for _, i in serial] == [
            i["raw_counts"] for _, i in sharded
        ]
        backend.close_services()

    def test_spsa_training_identical_across_jobs(
        self, backend, problem
    ):
        def train(jobs):
            pipeline = ExecutionPipeline(
                backend=backend,
                cost=ExpectedCutCost(problem),
                shots=SHOTS,
                jobs=jobs,
            )
            return train_model(
                GateLevelModel(problem),
                pipeline,
                SPSA(maxiter=3, seed=11),
                seed=23,
            )

        serial = train(1)
        sharded = train(2)
        assert serial.best_value == sharded.best_value
        np.testing.assert_array_equal(
            serial.best_parameters, sharded.best_parameters
        )
        assert serial.trace.values == sharded.trace.values
        backend.close_services()

    def test_duration_search_identical_across_jobs(
        self, backend, problem
    ):
        model = HybridGatePulseModel(problem, backend.device)
        parameters = np.asarray(model.initial_point(4), dtype=float)
        pipeline = ExecutionPipeline(
            backend=backend,
            cost=ExpectedCutCost(problem),
            shots=SHOTS,
        )
        serial = binary_search_mixer_duration(
            model, pipeline, parameters, seed=31
        )
        sharded = binary_search_mixer_duration(
            model, pipeline, parameters, seed=31, jobs=3
        )
        assert serial.duration == sharded.duration
        assert serial.evaluations == sharded.evaluations
        assert serial.infeasible == sharded.infeasible
        backend.close_services()


# ---------------------------------------------------------------------------
# futures API: submit / as_completed / backpressure / shutdown
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestFuturesAPI:
    def test_submit_and_as_completed(self, backend, sweep_circuits):
        sweep = SweepJob(sweep_circuits, shots=SHOTS, seed=13)
        with ExecutionService(backend, jobs=2) as service:
            futures = [service.submit(job) for job in sweep.jobs()]
            done = list(service.as_completed(futures, timeout=60))
            assert set(done) == set(futures)
            ordered = [f.result() for f in futures]
        reference = backend.run(
            sweep_circuits, shots=SHOTS, seeds=sweep.resolved_seeds()
        )
        assert counts_of(ordered) == counts_of(reference.experiments)

    def test_backpressure_bounds_in_flight_jobs(
        self, backend, sweep_circuits
    ):
        with ExecutionService(
            backend, jobs=2, max_pending=2
        ) as service:
            futures = [
                service.submit(job)
                for job in SweepJob(
                    sweep_circuits, shots=SHOTS, seed=3
                ).jobs()
            ]
            results = [f.result() for f in futures]
        assert len(results) == len(sweep_circuits)
        assert service.stats()["max_pending_seen"] <= 2
        assert service.stats()["pending"] == 0

    def test_map_respects_backpressure_bound(
        self, backend, sweep_circuits
    ):
        with ExecutionService(
            backend, jobs=2, max_pending=2
        ) as service:
            service.map(SweepJob(sweep_circuits, shots=SHOTS, seed=3))
            assert service.stats()["max_pending_seen"] <= 2

    def test_shutdown_rejects_new_work(self, backend, sweep_circuits):
        service = ExecutionService(backend, jobs=2)
        service.shutdown()
        with pytest.raises(BackendError):
            service.submit(
                CircuitJob(sweep_circuits[0], shots=SHOTS, seed=1)
            )

    def test_inline_fallback_matches_pool(
        self, backend, sweep_circuits
    ):
        sweep = SweepJob(sweep_circuits[:3], shots=SHOTS, seed=29)
        with ExecutionService(backend, jobs=1) as inline:
            inline_results = inline.map(sweep)
            # inline mode reports the in-process cache totals uniformly
            assert "inline" in inline.stats()["per_worker"]
        with ExecutionService(backend, jobs=2) as pooled:
            pooled_results = pooled.map(
                SweepJob(sweep_circuits[:3], shots=SHOTS, seed=29)
            )
        assert counts_of(inline_results) == counts_of(pooled_results)


# ---------------------------------------------------------------------------
# fault tolerance: chaos tests against the deterministic fault harness
# ---------------------------------------------------------------------------
#
# The invariant under test everywhere below: recovery is *silent* with
# respect to results.  Whatever the injected failure — worker SIGKILL,
# transient exceptions, hung shards, poison jobs, a dying store — the
# surviving jobs' counts must be byte-identical to a clean ``jobs=1``
# run, because retries re-execute the same pre-resolved seeds.

@pytest.fixture(scope="module")
def fault_jobs(sweep_circuits):
    return SweepJob(sweep_circuits, shots=SHOTS, seed=7).jobs()


@pytest.fixture(scope="module")
def clean_counts(backend, fault_jobs):
    """The jobs=1 no-faults reference every chaos test compares to."""
    with ExecutionService(backend) as service:
        experiments, meta = service.run_jobs(fault_jobs)
    assert meta["faults"]["retries"] == 0
    return counts_of(experiments)


class TestFaultPolicy:
    def test_rule_validation(self):
        with pytest.raises(BackendError):
            FaultRule("explode")
        with pytest.raises(BackendError):
            FaultRule("transient", scope="everywhere")
        with pytest.raises(BackendError):
            FaultRule("transient", rate=1.5)
        with pytest.raises(BackendError):
            FaultRule("transient", max_attempts=0)
        with pytest.raises(BackendError):
            FaultRule("delay", delay_seconds=-1.0)

    def test_decisions_are_deterministic(self):
        policy = FaultPolicy(
            rules=(FaultRule("transient", rate=0.5, max_attempts=None),),
            seed=11,
        )
        decisions = [
            bool(policy.matching("job", unit, attempt))
            for unit in range(20)
            for attempt in range(3)
        ]
        assert decisions == [
            bool(policy.matching("job", unit, attempt))
            for unit in range(20)
            for attempt in range(3)
        ]
        assert any(decisions) and not all(decisions)
        # a different seed must reshuffle which (unit, attempt) pairs fire
        other = FaultPolicy(
            rules=(FaultRule("transient", rate=0.5, max_attempts=None),),
            seed=12,
        )
        assert decisions != [
            bool(other.matching("job", unit, attempt))
            for unit in range(20)
            for attempt in range(3)
        ]

    def test_max_attempts_stops_firing(self):
        policy = FaultPolicy(rules=(FaultRule("transient", max_attempts=2),))
        assert policy.matching("job", 0, 0)
        assert policy.matching("job", 0, 1)
        assert not policy.matching("job", 0, 2)

    def test_match_tag_restricts_targets(self):
        policy = FaultPolicy(
            rules=(FaultRule("permanent", match_tag="poison"),)
        )
        assert not policy.matching("job", 0, 0, tag=None)
        with pytest.raises(PermanentFaultInjected):
            policy.apply("job", 0, 0, tag="poison")

    def test_kill_downgrades_inline(self):
        policy = FaultPolicy(rules=(FaultRule("kill"),))
        # allow_kill=False must never os._exit this very process
        with pytest.raises(FaultInjected):
            policy.apply("job", 0, 0, allow_kill=False)

    def test_policy_pickles(self):
        import pickle

        policy = FaultPolicy(
            rules=(FaultRule("kill", rate=0.25, max_attempts=3),), seed=5
        )
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestErrorClassification:
    def test_taxonomy(self):
        assert classify_error(TransientError("blip")) == "transient"
        assert classify_error(FaultInjected("blip")) == "transient"
        assert classify_error(MemoryError()) == "permanent"
        assert classify_error(ReproError("bad circuit")) == "permanent"
        assert classify_error(BackendError("bad job")) == "permanent"
        # unknown infrastructure errors retry (simulation is
        # side-effect-free, so a bounded retry is always safe)
        assert classify_error(OSError("pipe")) == "transient"


@pytest.mark.faults
class TestFaultRecoveryInline:
    def test_transient_blip_retries_to_identical_counts(
        self, backend, fault_jobs, clean_counts
    ):
        policy = FaultPolicy(rules=(FaultRule("transient", max_attempts=1),))
        with ExecutionService(
            backend, fault_policy=policy, retry_backoff=0.001
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["faults"]["retries"] == len(fault_jobs)
        assert meta["faults"]["transient_errors"] == len(fault_jobs)

    def test_exhausted_retries_quarantine(self, backend, fault_jobs):
        policy = FaultPolicy(
            rules=(FaultRule("transient", max_attempts=None),)
        )
        with ExecutionService(
            backend, fault_policy=policy, retries=1, retry_backoff=0.001
        ) as service:
            with pytest.raises(QuarantineError) as excinfo:
                service.run_jobs(fault_jobs)
        failures = excinfo.value.failures
        assert [f.index for f in failures] == list(range(len(fault_jobs)))
        assert all(f.attempts == 2 for f in failures)  # retries + 1

    def test_poison_job_fails_alone(
        self, backend, fault_jobs, clean_counts
    ):
        tagged = [
            replace(job, tag="poison") if index == 2 else job
            for index, job in enumerate(fault_jobs)
        ]
        policy = FaultPolicy(
            rules=(
                FaultRule(
                    "permanent", max_attempts=None, match_tag="poison"
                ),
            )
        )
        with ExecutionService(backend, fault_policy=policy) as service:
            results, meta = service.run_jobs(
                tagged, return_exceptions=True
            )
        assert isinstance(results[2], JobFailure)
        assert results[2].index == 2
        survivors = [r for i, r in enumerate(results) if i != 2]
        reference = [c for i, c in enumerate(clean_counts) if i != 2]
        assert counts_of(survivors) == reference
        quarantined = meta["faults"]["quarantined"]
        assert [entry["index"] for entry in quarantined] == [2]

    def test_quarantine_error_is_descriptive(self, backend, fault_jobs):
        tagged = [
            replace(job, tag="poison") if index == 2 else job
            for index, job in enumerate(fault_jobs)
        ]
        policy = FaultPolicy(
            rules=(
                FaultRule(
                    "permanent", max_attempts=None, match_tag="poison"
                ),
            )
        )
        with ExecutionService(backend, fault_policy=policy) as service:
            with pytest.raises(QuarantineError) as excinfo:
                service.run_jobs(tagged)
        error = excinfo.value
        assert len(error.failures) == 1
        assert "PermanentFaultInjected" in error.failures[0].error
        assert set(error.failures[0].as_dict()) == {
            "index", "description", "error", "attempts",
        }
        assert error.service_meta["faults"]["quarantined"]


@pytest.mark.faults
@pytest.mark.slow
class TestFaultRecoveryPooled:
    def test_transient_blip_recovers_byte_identical(
        self, backend, fault_jobs, clean_counts
    ):
        policy = FaultPolicy(rules=(FaultRule("transient", max_attempts=1),))
        with ExecutionService(
            backend, jobs=2, fault_policy=policy, retry_backoff=0.001
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["faults"]["retries"] >= 1
        assert meta["faults"]["pool_rebuilds"] == 0

    def test_worker_kill_rebuilds_pool_byte_identical(
        self, backend, fault_jobs, clean_counts
    ):
        # every first attempt dies by os._exit (the moral SIGKILL /
        # OOM-kill of a live worker mid-batch): the parent must see
        # BrokenProcessPool, rebuild, and resubmit the lost shards
        policy = FaultPolicy(rules=(FaultRule("kill", max_attempts=1),))
        with ExecutionService(
            backend, jobs=2, fault_policy=policy, retry_backoff=0.001
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["faults"]["pool_rebuilds"] >= 1
        assert meta["faults"]["inline_fallback"] is False

    def test_shard_timeout_reclaims_hung_worker(
        self, backend, fault_jobs, clean_counts
    ):
        # first attempts hang far beyond the per-unit budget; the
        # service must time the shards out, terminate the hung workers
        # and rerun on a fresh pool
        policy = FaultPolicy(
            rules=(
                FaultRule("delay", delay_seconds=30.0, max_attempts=1),
            )
        )
        with ExecutionService(
            backend,
            jobs=2,
            fault_policy=policy,
            retry_backoff=0.001,
            shard_timeout=2.0,
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["faults"]["timeouts"] >= 1
        assert meta["faults"]["pool_rebuilds"] >= 1

    def test_poison_job_bisected_out_of_shard(
        self, backend, fault_jobs, clean_counts
    ):
        # shards_per_worker=1 packs three jobs per shard, so the poison
        # job first fails as part of a multi-job shard and must be
        # narrowed down by bisection before it can be quarantined alone
        tagged = [
            replace(job, tag="poison") if index == 1 else job
            for index, job in enumerate(fault_jobs)
        ]
        policy = FaultPolicy(
            rules=(
                FaultRule(
                    "permanent", max_attempts=None, match_tag="poison"
                ),
            )
        )
        with ExecutionService(
            backend,
            jobs=2,
            shards_per_worker=1,
            fault_policy=policy,
            retry_backoff=0.001,
        ) as service:
            results, meta = service.run_jobs(
                tagged, return_exceptions=True
            )
        assert isinstance(results[1], JobFailure)
        survivors = [r for i, r in enumerate(results) if i != 1]
        reference = [c for i, c in enumerate(clean_counts) if i != 1]
        assert counts_of(survivors) == reference
        assert [e["index"] for e in meta["faults"]["quarantined"]] == [1]

    def test_repeated_pool_loss_degrades_to_inline(
        self, backend, fault_jobs, clean_counts
    ):
        # with a zero rebuild budget, the first broken pool must push
        # the whole remaining batch onto the inline path — where the
        # kill rule downgrades to a transient and retries succeed
        policy = FaultPolicy(rules=(FaultRule("kill", max_attempts=2),))
        with ExecutionService(
            backend,
            jobs=2,
            fault_policy=policy,
            retry_backoff=0.001,
            max_pool_rebuilds=0,
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["faults"]["inline_fallback"] is True
        assert service.stats()["inline_fallbacks"] == 1

    def test_submit_path_retries_transients(
        self, backend, fault_jobs, clean_counts
    ):
        policy = FaultPolicy(rules=(FaultRule("transient", max_attempts=1),))
        with ExecutionService(
            backend, jobs=2, fault_policy=policy, retry_backoff=0.001
        ) as service:
            futures = [service.submit(job) for job in fault_jobs]
            experiments = [f.result(timeout=120) for f in futures]
        assert counts_of(experiments) == clean_counts
        assert service.stats()["retries"] >= 1

    def test_warm_failure_surfaces_in_worker_metadata(
        self, backend, fault_jobs, clean_counts
    ):
        # a warm-up failure must not break the pool (jobs still run,
        # just cold) but must be visible per worker, not swallowed
        policy = FaultPolicy(
            rules=(FaultRule("transient", scope="warm", max_attempts=None),)
        )
        with ExecutionService(
            backend, jobs=2, fault_policy=policy
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        warm_errors = [
            worker.get("warm_error")
            for worker in meta["per_worker"].values()
        ]
        assert warm_errors and all(
            "FaultInjected" in (message or "") for message in warm_errors
        )


@pytest.mark.faults
@pytest.mark.slow
class TestStoreResilience:
    def test_crashed_batch_resumes_from_checkpoints(
        self, backend, fault_jobs, clean_counts, tmp_path
    ):
        # first run dies on a poison job, but every completed shard was
        # already checkpointed; the resubmitted batch must serve the
        # survivors from the store and execute only the missing job
        tagged = [
            replace(job, tag="poison") if index == 2 else job
            for index, job in enumerate(fault_jobs)
        ]
        policy = FaultPolicy(
            rules=(
                FaultRule(
                    "permanent", max_attempts=None, match_tag="poison"
                ),
            )
        )
        store_root = tmp_path / "store"
        with ExecutionService(
            backend,
            jobs=2,
            store=ResultStore(store_root),
            fault_policy=policy,
        ) as service:
            with pytest.raises(QuarantineError):
                service.run_jobs(tagged)
        assert len(ResultStore(store_root)) == len(fault_jobs) - 1
        with ExecutionService(
            backend, jobs=2, store=ResultStore(store_root)
        ) as resumed:
            experiments, meta = resumed.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["store_hits"] == len(fault_jobs) - 1
        assert resumed.stats()["jobs_run"] == 1

    def test_store_write_failure_degrades_not_kills(
        self, backend, fault_jobs, clean_counts, tmp_path
    ):
        class FullDiskStore(ResultStore):
            def put(self, key, experiment):
                raise OSError("disk full")

        with ExecutionService(
            backend, jobs=2, store=FullDiskStore(tmp_path / "bad")
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["store_degraded"] is True
        assert service.stats()["store"]["errors"] == 1

    def test_store_read_failure_degrades_not_kills(
        self, backend, fault_jobs, clean_counts, tmp_path
    ):
        class UnreadableStore(ResultStore):
            def get(self, key):
                raise OSError("I/O error")

        with ExecutionService(
            backend, store=UnreadableStore(tmp_path / "bad")
        ) as service:
            experiments, meta = service.run_jobs(fault_jobs)
        assert counts_of(experiments) == clean_counts
        assert meta["store_degraded"] is True

    def test_torn_store_entry_is_a_counted_miss(
        self, backend, fault_jobs, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        with ExecutionService(backend, store=store) as service:
            service.run_jobs(fault_jobs[:1])
        (json_path,) = list(store.root.glob("??/*.json"))
        json_path.write_text("{ torn mid-write")
        fresh = ResultStore(store.root)
        with ExecutionService(backend, store=fresh) as service:
            experiments, _ = service.run_jobs(fault_jobs[:1])
        assert experiments[0] is not None
        assert fresh.errors == 1
        assert fresh.stats()["errors"] == 1


# ---------------------------------------------------------------------------
# cache statistics plumbing
# ---------------------------------------------------------------------------

def test_cache_stats_totals_shape():
    totals = cache_stats_totals()
    assert set(totals) == {"hits", "misses", "caches"}
    assert totals["hits"] >= 0 and totals["misses"] >= 0
