"""Smoke tests of the experiment drivers (quick configuration)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    fig4,
    fig5,
    table1,
    table2,
)
from repro.experiments.config import FIG6_PAPER, TABLE2_PAPER


@pytest.fixture(scope="module")
def quick():
    return ExperimentConfig(quick=True, seed=99)


class TestConfig:
    def test_quick_reduces_budget(self):
        config = ExperimentConfig(quick=True)
        assert config.maxiter <= 8
        assert config.shots <= 256

    def test_paper_constants_complete(self):
        for backend, models in TABLE2_PAPER.items():
            for model, stages in models.items():
                assert set(stages) == {"raw", "go", "m3", "cvar"}
        assert len(FIG6_PAPER) == 6

    def test_backend_factory(self):
        config = ExperimentConfig()
        assert config.backend("toronto").name == "ibmq_toronto"


class TestTable1:
    def test_matches_paper_exactly(self, quick):
        result = table1.run(quick)
        assert table1.verify(result) == []
        rendering = table1.render(result)
        assert "166.220" in rendering  # auckland T1
        assert "5962.667" in rendering  # toronto readout length


class TestFig4:
    def test_optima_match(self, quick):
        result = fig4.run(quick)
        for task, row in result.items():
            assert row["max_cut"] == row["paper_max_cut"]
        assert "Max-Cut" in fig4.render(result)


class TestFig5Quick:
    def test_runs_and_reports(self, quick):
        result = fig5.run(quick)
        rendering = fig5.render(result)
        assert "hybrid+PO" in rendering
        assert result.hybrid_duration == 320
        assert result.hybrid_po_duration < 320
        assert 0.0 <= result.pulse_ar <= 1.0


class TestTable2Quick:
    def test_structure(self, quick):
        result = table2.run(quick)
        assert len(result.ars) == 3 * 2 * 4
        assert set(result.po_durations) == {
            "auckland",
            "toronto",
            "guadalupe",
        }
        rendering = table2.render(result)
        assert "Raw AR" in rendering and "CVaR AR" in rendering
