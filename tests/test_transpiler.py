"""Transpiler tests: coupling, basis translation, cancellation, SABRE."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Parameter, QuantumCircuit, standard_gate
from repro.circuits.gates import known_gate_names
from repro.exceptions import TranspilerError
from repro.simulators import circuit_to_unitary, simulate_statevector
from repro.transpiler import (
    ApplyLayout,
    BasisTranslation,
    CommutativeCancellation,
    CouplingMap,
    NoiseAwareLayout,
    SabreLayout,
    SabreSwap,
    SelfInverseCancellation,
    TranspileContext,
    circuit_duration,
    transpile,
)
from repro.transpiler.passes.basis import u3_angles_from_matrix
from repro.utils.linalg import process_fidelity


def unitaries_equal_up_to_phase(a, b, atol=1e-9):
    return process_fidelity(a, b) > 1 - atol


class TestCouplingMap:
    def test_line(self):
        cmap = CouplingMap.from_line(4)
        assert cmap.edges == [(0, 1), (1, 2), (2, 3)]
        assert cmap.distance(0, 3) == 3
        assert cmap.are_adjacent(1, 2)
        assert not cmap.are_adjacent(0, 2)

    def test_ring_distance(self):
        cmap = CouplingMap.from_ring(6)
        assert cmap.distance(0, 3) == 3
        assert cmap.distance(0, 5) == 1

    def test_grid(self):
        cmap = CouplingMap.from_grid(2, 3)
        assert cmap.num_qubits == 6
        assert cmap.are_adjacent(0, 3)
        assert cmap.distance(0, 5) == 3

    def test_self_edge_rejected(self):
        with pytest.raises(TranspilerError):
            CouplingMap([(0, 0)])

    def test_disconnected_distance_raises(self):
        cmap = CouplingMap([(0, 1), (2, 3)])
        with pytest.raises(TranspilerError):
            cmap.distance(0, 3)

    def test_connected_subgraphs(self):
        cmap = CouplingMap.from_line(4)
        subs = cmap.connected_subgraphs(2)
        assert (0, 1) in subs and (1, 2) in subs
        assert (0, 2) not in subs

    def test_shortest_path(self):
        cmap = CouplingMap.from_line(5)
        assert cmap.shortest_path(0, 3) == [0, 1, 2, 3]


class TestU3Extraction:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_unitaries_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        mat = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        q, _ = np.linalg.qr(mat)
        theta, phi, lam, phase = u3_angles_from_matrix(q)
        rebuilt = np.exp(1j * (phase - (phi + lam) / 2)) * standard_gate(
            "u3", [theta, phi, lam]
        ).matrix()
        # up-to-phase check is the contract the transpiler relies on
        assert unitaries_equal_up_to_phase(rebuilt, q)

    def test_diagonal_unitary(self):
        mat = np.diag([1, np.exp(0.7j)])
        theta, phi, lam, _ = u3_angles_from_matrix(mat)
        assert theta == pytest.approx(0.0, abs=1e-9)
        rebuilt = standard_gate("u3", [theta, phi, lam]).matrix()
        assert unitaries_equal_up_to_phase(rebuilt, mat)


class TestBasisTranslation:
    @pytest.mark.parametrize(
        "name",
        sorted(known_gate_names() - {"cx", "rz", "sx", "x"}),
    )
    def test_every_gate_translates_correctly(self, name):
        from repro.circuits.gates import _PARAMETRIC_SIGNATURES

        if name in _PARAMETRIC_SIGNATURES:
            num_qubits, num_params = _PARAMETRIC_SIGNATURES[name]
            gate = standard_gate(name, [0.731] * num_params)
        else:
            gate = standard_gate(name)
            num_qubits = gate.num_qubits
        qc = QuantumCircuit(num_qubits)
        qc.append(gate, list(range(num_qubits)))
        translated = BasisTranslation()(qc)
        allowed = {"rz", "sx", "x", "cx"}
        assert set(translated.count_ops()) <= allowed
        assert unitaries_equal_up_to_phase(
            circuit_to_unitary(translated), circuit_to_unitary(qc)
        )

    def test_parametric_rx_stays_symbolic(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rx(theta, 0)
        translated = BasisTranslation()(qc)
        assert theta in set(translated.parameters)
        bound = translated.assign_parameters({theta: 0.9})
        reference = QuantumCircuit(1)
        reference.rx(0.9, 0)
        assert unitaries_equal_up_to_phase(
            circuit_to_unitary(bound), circuit_to_unitary(reference)
        )

    def test_parametric_rzz_stays_symbolic(self):
        gamma = Parameter("gamma")
        qc = QuantumCircuit(2)
        qc.rzz(gamma, 0, 1)
        translated = BasisTranslation()(qc)
        assert set(translated.count_ops()) <= {"rz", "sx", "x", "cx"}
        bound = translated.assign_parameters({gamma: 1.3})
        reference = QuantumCircuit(2)
        reference.rzz(1.3, 0, 1)
        assert unitaries_equal_up_to_phase(
            circuit_to_unitary(bound), circuit_to_unitary(reference)
        )

    def test_keep_rzz_in_extended_basis(self):
        qc = QuantumCircuit(2)
        qc.rzz(0.5, 0, 1)
        translated = BasisTranslation(
            {"rz", "sx", "x", "cx", "rzz"}
        )(qc)
        assert translated.count_ops() == {"rzz": 1}

    def test_measure_and_barrier_pass_through(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.barrier()
        qc.measure(0, 0)
        translated = BasisTranslation()(qc)
        ops = translated.count_ops()
        assert ops["measure"] == 1
        assert ops["barrier"] == 1

    def test_mixer_layer_is_two_sx_deep(self):
        # RX lowers to RZ-SX-RZ-SX-RZ: exactly two physical pulses; this
        # is the 2 x 160 dt = 320 dt raw mixer duration of the paper
        qc = QuantumCircuit(1)
        qc.rx(0.7, 0)
        translated = BasisTranslation()(qc)
        assert translated.count_ops().get("sx", 0) == 2


class TestCancellation:
    def test_adjacent_h_pair(self):
        qc = QuantumCircuit(1)
        qc.h(0).h(0)
        out = SelfInverseCancellation()(qc)
        assert out.size() == 0

    def test_odd_h_chain(self):
        qc = QuantumCircuit(1)
        qc.h(0).h(0).h(0)
        out = SelfInverseCancellation()(qc)
        assert out.count_ops() == {"h": 1}

    def test_cx_pair_cancel(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(0, 1)
        out = SelfInverseCancellation()(qc)
        assert out.size() == 0

    def test_cx_reversed_not_cancelled(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(1, 0)
        out = SelfInverseCancellation()(qc)
        assert out.count_ops() == {"cx": 2}

    def test_s_sdg_pair(self):
        qc = QuantumCircuit(1)
        qc.s(0).sdg(0)
        out = SelfInverseCancellation()(qc)
        assert out.size() == 0

    def test_barrier_blocks_cancellation(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.barrier()
        qc.h(0)
        out = SelfInverseCancellation()(qc)
        assert out.count_ops().get("h", 0) == 2

    def test_rz_merge(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0).rz(0.4, 0)
        out = CommutativeCancellation()(qc)
        assert out.count_ops() == {"rz": 1}
        assert out.instructions[0].operation.params[0] == pytest.approx(0.7)

    def test_rz_merge_to_zero_drops(self):
        qc = QuantumCircuit(1)
        qc.rz(0.5, 0).rz(-0.5, 0)
        out = CommutativeCancellation()(qc)
        assert out.size() == 0

    def test_rz_through_cx_control(self):
        qc = QuantumCircuit(2)
        qc.rz(0.3, 0)
        qc.cx(0, 1)
        qc.rz(-0.3, 0)
        out = CommutativeCancellation()(qc)
        assert out.count_ops() == {"cx": 1}

    def test_x_through_cx_target(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        qc.cx(0, 1)
        qc.x(1)
        out = CommutativeCancellation()(qc)
        assert out.count_ops() == {"cx": 1}

    def test_rz_not_through_cx_target(self):
        qc = QuantumCircuit(2)
        qc.rz(0.3, 1)
        qc.cx(0, 1)
        qc.rz(-0.3, 1)
        out = CommutativeCancellation()(qc)
        assert out.count_ops().get("rz", 0) == 2

    def test_unitary_preserved(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(0).rz(0.2, 0).cx(0, 1).rz(0.5, 0).cx(0, 1).cx(0, 1)
        out = CommutativeCancellation()(qc)
        assert unitaries_equal_up_to_phase(
            circuit_to_unitary(out), circuit_to_unitary(qc)
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_circuits_preserved(self, seed):
        rng = np.random.default_rng(seed)
        qc = QuantumCircuit(3)
        for _ in range(12):
            choice = rng.integers(5)
            if choice == 0:
                qc.h(int(rng.integers(3)))
            elif choice == 1:
                qc.rz(float(rng.normal()), int(rng.integers(3)))
            elif choice == 2:
                qc.x(int(rng.integers(3)))
            elif choice == 3:
                a, b = rng.choice(3, size=2, replace=False)
                qc.cx(int(a), int(b))
            else:
                qc.rx(float(rng.normal()), int(rng.integers(3)))
        out = CommutativeCancellation()(qc)
        assert out.size() <= qc.size()
        assert unitaries_equal_up_to_phase(
            circuit_to_unitary(out), circuit_to_unitary(qc)
        )


class TestSabreSwap:
    def _routed_equivalent(self, circuit, routed, layout_in, layout_out):
        """Check routed circuit == original under wire permutations."""
        import itertools

        n_phys = routed.num_qubits
        # statevector check on |psi> = routed |0...0> vs expected
        rng = np.random.default_rng(7)
        # build expected: original on logical wires embedded at layout_in,
        # then permutation from layout_in to layout_out applied
        state = simulate_statevector(routed)
        # apply inverse permutation: wire w sits at layout_out[w]
        from repro.circuits import QuantumCircuit as QC

        expected_circuit = QC(n_phys)
        for inst in circuit.instructions:
            expected_circuit.append(
                inst.operation, [layout_in[q] for q in inst.qubits]
            )
        expected = simulate_statevector(expected_circuit)
        # expected has wire w at layout_in[w]; routed has it at
        # layout_out[w]: permute expected accordingly
        perm = {layout_in[w]: layout_out[w] for w in layout_in}
        full_perm = dict(perm)
        for p in range(n_phys):
            if p not in full_perm:
                full_perm[p] = p
        # permutation as index remap on basis states
        dim = 1 << n_phys
        remapped = np.zeros(dim, dtype=complex)
        for idx in range(dim):
            out_idx = 0
            for src in range(n_phys):
                bit = (idx >> src) & 1
                out_idx |= bit << full_perm[src]
            remapped[out_idx] = expected.data[idx]
        fidelity = abs(np.vdot(remapped, state.data)) ** 2
        assert fidelity > 1 - 1e-9

    def test_adjacent_gates_untouched(self):
        cmap = CouplingMap.from_line(3)
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        ctx = TranspileContext()
        routed = SabreSwap(cmap, seed=1)(qc, ctx)
        assert routed.count_ops().get("swap", 0) == 0
        assert ctx.final_layout == {0: 0, 1: 1, 2: 2}

    def test_distant_gate_gets_swaps(self):
        cmap = CouplingMap.from_line(3)
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        ctx = TranspileContext()
        routed = SabreSwap(cmap, seed=1)(qc, ctx)
        assert routed.count_ops().get("swap", 0) >= 1
        # all 2q gates adjacent
        for inst in routed.instructions:
            if len(inst.qubits) == 2:
                assert cmap.are_adjacent(*inst.qubits)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_routing_preserves_semantics(self, seed):
        rng = np.random.default_rng(seed)
        cmap = CouplingMap.from_line(4)
        qc = QuantumCircuit(4)
        for _ in range(10):
            a, b = rng.choice(4, size=2, replace=False)
            if rng.random() < 0.5:
                qc.cx(int(a), int(b))
            else:
                qc.rzz(float(rng.normal()), int(a), int(b))
            qc.rz(float(rng.normal()), int(rng.integers(4)))
        ctx = TranspileContext()
        routed = SabreSwap(cmap, seed=seed)(qc, ctx)
        for inst in routed.instructions:
            if len(inst.qubits) == 2:
                assert cmap.are_adjacent(*inst.qubits)
        self._routed_equivalent(
            qc, routed, ctx.initial_layout, ctx.final_layout
        )

    def test_measurements_follow_layout(self):
        cmap = CouplingMap.from_line(3)
        qc = QuantumCircuit(2, 2)
        qc.cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        ctx = TranspileContext()
        routed = SabreSwap(cmap, initial_layout=[2, 1], seed=0)(qc, ctx)
        measured = [
            inst.qubits[0]
            for inst in routed.instructions
            if inst.operation.name == "measure"
        ]
        assert sorted(measured) == sorted(
            ctx.final_layout[w] for w in (0, 1)
        )

    def test_too_wide_circuit_raises(self):
        cmap = CouplingMap.from_line(2)
        qc = QuantumCircuit(3)
        with pytest.raises(TranspilerError):
            SabreSwap(cmap)(qc, None)

    def test_duplicate_layout_rejected(self):
        cmap = CouplingMap.from_line(3)
        qc = QuantumCircuit(2)
        with pytest.raises(TranspilerError):
            SabreSwap(cmap, initial_layout=[1, 1])(qc, None)


class TestLayoutPasses:
    def test_sabre_layout_reduces_swaps_vs_bad_layout(self):
        cmap = CouplingMap.from_line(6)
        qc = QuantumCircuit(6)
        # nearest-neighbour chain of rzz: perfect for a line
        for i in range(5):
            qc.rzz(0.4, i, i + 1)
        ctx_good = TranspileContext()
        SabreLayout(cmap, trials=4, seed=3)(qc, ctx_good)
        routed_good = SabreSwap(cmap, ctx_good.initial_layout, seed=0)(
            qc, ctx_good
        )
        bad_layout = [0, 5, 1, 4, 2, 3]
        routed_bad = SabreSwap(cmap, bad_layout, seed=0)(
            qc, TranspileContext()
        )
        assert routed_good.count_ops().get("swap", 0) <= routed_bad.count_ops().get(
            "swap", 0
        )

    def test_noise_aware_layout_picks_quiet_region(self):
        cmap = CouplingMap.from_line(4)
        edge_errors = {(0, 1): 0.10, (1, 2): 0.01, (2, 3): 0.01}
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        ctx = TranspileContext()
        NoiseAwareLayout(cmap, edge_errors)(qc, ctx)
        chosen = set(ctx.initial_layout.values())
        assert 0 not in chosen  # avoid the noisy edge

    def test_apply_layout_adjacency_check(self):
        cmap = CouplingMap.from_line(3)
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(TranspilerError):
            ApplyLayout(cmap, [0, 2])(qc, None)
        out = ApplyLayout(cmap, [0, 1])(qc, None)
        assert out.num_qubits == 3


class TestTranspile:
    def test_end_to_end_semantics(self):
        cmap = CouplingMap.from_ring(4)
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.rzz(0.8, 0, 2)
        qc.rx(0.5, 1)
        qc.cx(2, 1)
        out = transpile(qc, cmap, optimization_level=1, seed=5)
        assert out.num_qubits == 4
        assert set(out.count_ops()) <= {"rz", "sx", "x", "cx", "barrier"}
        assert "initial_layout" in out.metadata
        assert "final_layout" in out.metadata

    def test_optimization_reduces_size(self):
        cmap = CouplingMap.from_line(2)
        qc = QuantumCircuit(2)
        qc.h(0).h(0)
        qc.rz(0.2, 0)
        qc.rz(0.3, 0)
        qc.cx(0, 1)
        out0 = transpile(qc, cmap, optimization_level=0, seed=1)
        out2 = transpile(qc, cmap, optimization_level=2, seed=1)
        assert out2.size() <= out0.size()

    def test_bad_level(self):
        cmap = CouplingMap.from_line(2)
        with pytest.raises(TranspilerError):
            transpile(QuantumCircuit(1), cmap, optimization_level=9)


class TestScheduling:
    @staticmethod
    def durations(name, qubits):
        table = {"rz": 0, "sx": 160, "x": 160, "cx": 704, "measure": 3000}
        return table.get(name, 160)

    def test_serial_duration(self):
        qc = QuantumCircuit(1)
        qc.sx(0)
        qc.sx(0)
        assert circuit_duration(qc, self.durations) == 320

    def test_parallel_duration(self):
        qc = QuantumCircuit(2)
        qc.sx(0)
        qc.sx(1)
        assert circuit_duration(qc, self.durations) == 160

    def test_rz_is_free(self):
        qc = QuantumCircuit(1)
        qc.rz(1.0, 0)
        qc.rz(2.0, 0)
        assert circuit_duration(qc, self.durations) == 0

    def test_cx_serialises_on_shared_qubit(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        assert circuit_duration(qc, self.durations) == 1408

    def test_barrier_synchronises(self):
        qc = QuantumCircuit(2)
        qc.sx(0)
        qc.barrier()
        qc.sx(1)
        assert circuit_duration(qc, self.durations) == 320

    def test_idle_windows(self):
        from repro.transpiler.passes.scheduling import schedule_circuit

        qc = QuantumCircuit(2)
        qc.sx(0)
        qc.cx(0, 1)
        qc.sx(1)
        qc.sx(0)  # qubit 0 idle while sx(1) runs? no: check windows
        schedule = schedule_circuit(qc, self.durations)
        assert schedule.duration == 160 + 704 + 160
        # qubit 1 idles during the initial sx(0)
        assert schedule.qubit_intervals(1)[0][0] == 160

    def test_dynamical_decoupling_inserts_pairs(self):
        from repro.transpiler import DynamicalDecoupling

        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.measure_all()
        # make qubit 0 idle for a long time before a final gate
        qc2 = QuantumCircuit(2)
        qc2.x(0)
        qc2.cx(0, 1)
        qc2.sx(1)
        qc2.sx(1)
        qc2.sx(1)
        qc2.sx(1)
        qc2.sx(1)
        qc2.cx(0, 1)
        dd = DynamicalDecoupling(self.durations, min_window=320)
        out = dd(qc2)
        # an even number of extra X gates inserted on qubit 0
        extra_x = out.count_ops().get("x", 0) - qc2.count_ops().get("x", 0)
        assert extra_x >= 2 and extra_x % 2 == 0

    def test_dd_preserves_unitary(self):
        from repro.transpiler import DynamicalDecoupling

        qc = QuantumCircuit(2)
        qc.x(0)
        qc.cx(0, 1)
        for _ in range(5):
            qc.sx(1)
        qc.cx(0, 1)
        dd = DynamicalDecoupling(self.durations, min_window=320)
        out = dd(qc)
        assert unitaries_equal_up_to_phase(
            circuit_to_unitary(out), circuit_to_unitary(qc)
        )
