"""Tests for ansätze, cost functions, optimizers and traces."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import OptimizerError, ProblemError
from repro.problems import MaxCutProblem, three_regular_6
from repro.simulators import simulate_statevector
from repro.vqa import (
    COBYLA,
    SPSA,
    ConvergenceTrace,
    CVaRCost,
    ExpectedCutCost,
    NelderMead,
    hardware_efficient_ansatz,
    qaoa_ansatz,
)


class TestQAOAAnsatz:
    def test_structure(self):
        circuit, gammas, betas = qaoa_ansatz(three_regular_6(), p=2)
        assert len(gammas) == 2 and len(betas) == 2
        ops = circuit.count_ops()
        assert ops["h"] == 6
        assert ops["rzz"] == 18  # 9 edges x 2 layers
        assert ops["rx"] == 12
        assert ops["measure"] == 6
        assert circuit.num_parameters == 4

    def test_p_zero_rejected(self):
        with pytest.raises(ProblemError):
            qaoa_ansatz(three_regular_6(), p=0)

    def test_uniform_superposition_at_zero_angles(self):
        circuit, gammas, betas = qaoa_ansatz(
            three_regular_6(), p=1, measure=False
        )
        bound = circuit.assign_parameters(
            {gammas[0]: 0.0, betas[0]: 0.0}
        )
        state = simulate_statevector(bound)
        np.testing.assert_allclose(
            state.probabilities(), np.full(64, 1 / 64), atol=1e-12
        )

    def test_known_noiseless_performance(self):
        """Noiseless p=1 QAOA must beat random guessing on task 1."""
        problem = MaxCutProblem(three_regular_6())
        circuit, gammas, betas = qaoa_ansatz(
            three_regular_6(), p=1, measure=False
        )
        diag = problem.cut_values()

        best = 0.0
        for gamma in np.linspace(0.2, 1.4, 9):
            for beta in np.linspace(0.1, 1.2, 9):
                bound = circuit.assign_parameters(
                    {gammas[0]: gamma, betas[0]: 2 * beta}
                )
                state = simulate_statevector(bound)
                best = max(best, state.expectation_diagonal(diag))
        assert best / problem.maximum_cut() > 0.6


class TestHardwareEfficientAnsatz:
    def test_parameter_count(self):
        circuit, params = hardware_efficient_ansatz(4, depth=2)
        assert len(params) == 3 * 4 * 3
        assert circuit.num_parameters == len(params)

    def test_entanglement_patterns(self):
        linear, _ = hardware_efficient_ansatz(4, 1, "linear")
        circular, _ = hardware_efficient_ansatz(4, 1, "circular")
        full, _ = hardware_efficient_ansatz(4, 1, "full")
        assert linear.count_ops()["cx"] == 3
        assert circular.count_ops()["cx"] == 4
        assert full.count_ops()["cx"] == 6

    def test_bad_entanglement(self):
        with pytest.raises(ProblemError):
            hardware_efficient_ansatz(3, 1, "star")


class TestCosts:
    def test_expected_cut_cost(self):
        problem = MaxCutProblem(three_regular_6())
        cost = ExpectedCutCost(problem)
        assert cost({"010101": 1}) == pytest.approx(9.0)

    def test_cvar_cost(self):
        problem = MaxCutProblem(three_regular_6())
        cost = CVaRCost(problem, alpha=0.5)
        counts = {"010101": 50, "000000": 50}
        assert cost(counts) == pytest.approx(9.0)

    def test_cvar_alpha_validation(self):
        problem = MaxCutProblem(three_regular_6())
        with pytest.raises(ProblemError):
            CVaRCost(problem, alpha=1.5)


class TestOptimizers:
    @pytest.mark.parametrize(
        "optimizer",
        [COBYLA(maxiter=80), NelderMead(maxiter=200), SPSA(maxiter=150, seed=0)],
    )
    def test_quadratic_bowl(self, optimizer):
        result = optimizer.minimize(
            lambda x: float(np.sum((x - 1.5) ** 2)), [0.0, 0.0]
        )
        np.testing.assert_allclose(result.x, [1.5, 1.5], atol=0.2)

    def test_bounds_respected(self):
        optimizer = COBYLA(maxiter=60)
        result = optimizer.minimize(
            lambda x: float((x[0] - 5.0) ** 2),
            [0.5],
            bounds=[(0.0, 1.0)],
        )
        assert 0.0 <= result.x[0] <= 1.0

    def test_history_recorded(self):
        optimizer = COBYLA(maxiter=20)
        result = optimizer.minimize(lambda x: float(x[0] ** 2), [1.0])
        assert result.nfev == len(result.history) > 0

    def test_bounds_length_check(self):
        with pytest.raises(OptimizerError):
            COBYLA().minimize(lambda x: 0.0, [0.0, 1.0], bounds=[(0, 1)])

    def test_maxiter_validation(self):
        with pytest.raises(OptimizerError):
            COBYLA(maxiter=0)

    def test_spsa_noisy_objective(self):
        rng = np.random.default_rng(1)

        def noisy(x):
            return float(np.sum(x**2)) + rng.normal(0, 0.01)

        result = SPSA(maxiter=200, seed=2).minimize(noisy, [1.0, -1.0])
        assert np.linalg.norm(result.x) < 0.5


class TestTrace:
    def test_best_tracking(self):
        trace = ConvergenceTrace()
        for value in (1.0, 3.0, 2.0):
            trace.record(np.array([value]), value)
        assert trace.best_value == 3.0
        assert trace.best_parameters[0] == 3.0
        assert trace.best_so_far() == [1.0, 3.0, 3.0]

    def test_iterations_to_reach(self):
        trace = ConvergenceTrace()
        for value in (1.0, 2.0, 5.0, 4.0):
            trace.record(np.array([0.0]), value)
        assert trace.iterations_to_reach(4.5) == 2
        assert trace.iterations_to_reach(10.0) is None

    def test_empty_trace_errors(self):
        with pytest.raises(ValueError):
            _ = ConvergenceTrace().best_value
