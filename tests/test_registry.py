"""Tests for the simulation-method registry: plugins, budgets, errors."""

import numpy as np
import pytest

from repro.backends import (
    FakeGuadalupe,
    execute_circuit,
    method_names,
    method_qubit_budget,
    method_qubit_budgets,
    select_method,
    set_method_qubit_budget,
)
from repro.backends.result import Counts, ExperimentResult
from repro.circuits import QuantumCircuit
from repro.exceptions import BackendError
from repro.service import CircuitJob, job_fingerprint
from repro.simulators.registry import (
    MethodDescriptor,
    adopt_method_budgets,
    autodetect_method_budgets,
    check_qubit_budget,
    method_descriptor,
    register_method,
    registered_methods,
    unregister_method,
)


def line_circuit(n):
    qc = QuantumCircuit(n, n)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    for i in range(n):
        qc.measure(i, i)
    return qc


@pytest.fixture(scope="module")
def backend():
    return FakeGuadalupe()


class TestRegistryBasics:
    def test_builtins_registered_in_order(self):
        assert method_names() == (
            "density_matrix", "statevector", "trajectory", "stabilizer"
        )
        assert method_names(include_auto=True)[0] == "auto"

    def test_descriptor_lookup(self):
        descriptor = method_descriptor("trajectory")
        assert descriptor.statistical
        assert descriptor.version == 1
        assert not method_descriptor("density_matrix").statistical

    def test_unknown_method_error_names_registry(self):
        with pytest.raises(BackendError, match="stabilizer"):
            method_descriptor("does_not_exist")

    def test_duplicate_registration_rejected(self):
        descriptor = method_descriptor("trajectory")
        with pytest.raises(BackendError, match="already registered"):
            register_method(descriptor)
        # replace=True round-trips cleanly
        register_method(descriptor, replace=True)
        assert method_descriptor("trajectory") is descriptor

    def test_invalid_names_rejected(self):
        base = method_descriptor("statevector")
        for name in ("auto", ""):
            with pytest.raises(BackendError, match="invalid method name"):
                register_method(
                    MethodDescriptor(
                        name=name,
                        supports=base.supports,
                        cost=base.cost,
                        execute=base.execute,
                        default_qubit_budget=4,
                    )
                )

    def test_unregister_unknown_rejected(self):
        with pytest.raises(BackendError, match="not registered"):
            unregister_method("does_not_exist")


class TestPluginRegistration:
    """A toy back-end plugs in and immediately joins auto dispatch."""

    @staticmethod
    def _toy_descriptor(**overrides):
        def execute(plan, request):
            # a fake sampler: every shot lands on outcome 0
            return ExperimentResult(
                Counts({"0" * len(plan.measured_clbits): request.shots}),
                0,
                metadata={"method": "toy"},
            )

        fields = dict(
            name="toy",
            supports=lambda plan, noise: noise is None,
            cost=lambda plan, noise: 0.5,  # cheaper than everything
            execute=execute,
            default_qubit_budget=64,
            version=1,
        )
        fields.update(overrides)
        return MethodDescriptor(**fields)

    def test_plugin_participates_in_dispatch_and_budgets(self, backend):
        register_method(self._toy_descriptor())
        try:
            assert "toy" in method_names()
            circuit = line_circuit(3)
            # cheapest supporting method wins auto for noiseless runs
            assert select_method(circuit, backend.target, None) == "toy"
            # ...but its predicate keeps it out of noisy dispatch
            assert (
                select_method(circuit, backend.target, backend.noise_model)
                == "density_matrix"
            )
            result = execute_circuit(
                circuit, backend.target, None, shots=64, seed=1,
                method="toy",
            )
            assert result.metadata["method"] == "toy"
            assert sum(result.counts.values()) == 64
            # budgets work like any built-in, including the error text
            set_method_qubit_budget("toy", 2)
            with pytest.raises(BackendError, match="2-qubit toy"):
                execute_circuit(
                    circuit, backend.target, None, shots=1, method="toy"
                )
            # jobs validate and fingerprint plugin methods
            job = CircuitJob(circuit, shots=64, seed=1, method="toy")
            assert job_fingerprint(job, "k") is not None
        finally:
            unregister_method("toy")
        assert "toy" not in method_names()
        with pytest.raises(BackendError, match="unknown simulation"):
            execute_circuit(
                line_circuit(2), backend.target, None, shots=1,
                method="toy",
            )

    def test_descriptor_version_retires_store_keys(self, backend):
        """Fingerprint v4 folds the resolved descriptor's version."""
        register_method(self._toy_descriptor())
        try:
            job = CircuitJob(
                line_circuit(3), shots=64, seed=1, method="toy"
            )
            key_v1 = job_fingerprint(job, "k")
            register_method(
                self._toy_descriptor(version=2), replace=True
            )
            key_v2 = job_fingerprint(job, "k")
            assert key_v1 != key_v2
        finally:
            unregister_method("toy")


class TestBudgets:
    def test_snapshot_and_adopt(self):
        budgets = method_qubit_budgets()
        assert budgets["density_matrix"] == 14
        try:
            adopt_method_budgets(
                {"density_matrix": 5, "from_another_process": 9}
            )
            # unknown plugin names are skipped, known ones adopted
            assert method_qubit_budget("density_matrix") == 5
        finally:
            set_method_qubit_budget("density_matrix", None)
        assert method_qubit_budget("density_matrix") == 14

    def test_budget_error_names_alternatives_and_autodetect(self):
        with pytest.raises(BackendError) as excinfo:
            check_qubit_budget("density_matrix", 15)
        message = str(excinfo.value)
        assert "15 active qubits exceed the 14-qubit density_matrix" in message
        for name in ("statevector", "trajectory", "stabilizer"):
            assert name in message
        assert "set_method_qubit_budget" in message
        assert "autodetect_method_budgets" in message

    def test_budget_error_alternatives_respect_capability(self, backend):
        # a 30q non-Clifford noiseless circuit pinned to statevector:
        # the tableau cannot run it, so the error must not advertise it
        circuit = QuantumCircuit(30, 30)
        for q in range(30):
            circuit.rz(0.3, q)
            circuit.sx(q)
            circuit.measure(q, q)
        from repro.backends import Target
        from repro.transpiler import CouplingMap

        with pytest.raises(BackendError) as excinfo:
            execute_circuit(
                circuit, Target(30, CouplingMap.from_line(30)), None,
                shots=1, method="statevector",
            )
        message = str(excinfo.value)
        assert "30 active qubits exceed" in message
        assert "stabilizer" not in message

    def test_parent_budget_changes_reach_live_workers(self):
        """Budgets travel with every shard, not just the pool start.

        ``set_method_qubit_budget`` in the parent *after* the worker
        pool exists must still govern jobs — the per-shard budget
        snapshot is the fix for the old initializer-only limitation.
        """
        backend = FakeGuadalupe()
        try:
            service = backend.execution_service(2)
            # spin the pool up under the default budgets
            warm = service.submit(
                CircuitJob(line_circuit(3), shots=8, seed=0)
            )
            warm.result()
            set_method_qubit_budget("density_matrix", 3)
            try:
                future = service.submit(
                    CircuitJob(
                        line_circuit(4), shots=8, seed=0,
                        method="density_matrix",
                    )
                )
                with pytest.raises(BackendError, match="3-qubit"):
                    future.result()
            finally:
                set_method_qubit_budget("density_matrix", None)
        finally:
            backend.close_services()


class TestAutodetectBudgets:
    def test_shipped_defaults_are_a_floor(self):
        tiny = autodetect_method_budgets(memory_bytes=1)
        assert tiny == {
            name: descriptor.default_qubit_budget
            for name, descriptor in zip(
                method_names(), registered_methods()
            )
        }

    def test_derived_budgets_scale_with_memory(self):
        budgets = autodetect_method_budgets(memory_bytes=1 << 40)
        # 2^39 usable: density 4^n * 16 <= 2^39 -> 17 qubits;
        # statevector/trajectory 2^n * 16 <= 2^39 -> 35 qubits
        assert budgets["density_matrix"] == 17
        assert budgets["statevector"] == 35
        assert budgets["trajectory"] == 35
        # the packed tableau is quadratic (~n^2/2 bytes): any realistic
        # memory grant derives past the registry ceiling
        from repro.simulators.registry import MAX_AUTODETECT_QUBITS

        assert budgets["stabilizer"] == MAX_AUTODETECT_QUBITS

    def test_apply_installs_and_reset_restores(self):
        try:
            installed = autodetect_method_budgets(
                memory_bytes=1 << 40, apply=True
            )
            assert method_qubit_budget("density_matrix") == installed[
                "density_matrix"
            ]
        finally:
            for name in method_names():
                set_method_qubit_budget(name, None)
        assert method_qubit_budget("density_matrix") == 14

    def test_bounded_memory_models_terminate(self):
        """A constant state_bytes model must not hang the derivation."""
        from repro.simulators.registry import MAX_AUTODETECT_QUBITS

        base = method_descriptor("statevector")
        register_method(
            MethodDescriptor(
                name="flat_memory",
                supports=lambda plan, noise: False,
                cost=lambda plan, noise: float("inf"),
                execute=base.execute,
                default_qubit_budget=4,
                state_bytes=lambda n: 4096,  # constant: never exceeds
            )
        )
        try:
            budgets = autodetect_method_budgets(memory_bytes=1 << 30)
            assert budgets["flat_memory"] == MAX_AUTODETECT_QUBITS
        finally:
            unregister_method("flat_memory")

    def test_manual_overrides_are_part_of_the_floor(self):
        # autodetection never lowers a deliberate override
        try:
            set_method_qubit_budget("statevector", 40)
            budgets = autodetect_method_budgets(memory_bytes=8 << 30)
            assert budgets["statevector"] == 40
        finally:
            set_method_qubit_budget("statevector", None)

    def test_fraction_validated(self):
        with pytest.raises(BackendError, match="fraction"):
            autodetect_method_budgets(memory_bytes=1 << 30, fraction=0.0)

    def test_meminfo_fallback_never_lowers(self):
        # whatever this machine reports, the floor holds
        budgets = autodetect_method_budgets()
        assert budgets["density_matrix"] >= 14
        assert budgets["statevector"] >= 26
