"""Tests for Max-Cut, Ising encodings, and the benchmark graphs."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemError
from repro.problems import (
    IsingModel,
    MaxCutProblem,
    benchmark_graph,
    erdos_renyi_6,
    maxcut_to_ising,
    random_regular_graph,
    three_regular_6,
    three_regular_8,
)


class TestBenchmarkGraphs:
    def test_task1_paper_optimum(self):
        problem = MaxCutProblem(three_regular_6())
        assert problem.maximum_cut() == 9  # paper Fig. 4(1)

    def test_task2_paper_optimum(self):
        problem = MaxCutProblem(erdos_renyi_6())
        assert problem.maximum_cut() == 8  # paper Fig. 4(2)

    def test_task3_paper_optimum(self):
        problem = MaxCutProblem(three_regular_8())
        assert problem.maximum_cut() == 10  # paper Fig. 4(3)

    def test_task1_is_3_regular(self):
        graph = three_regular_6()
        assert all(d == 3 for _, d in graph.degree())

    def test_task3_is_3_regular(self):
        graph = three_regular_8()
        assert all(d == 3 for _, d in graph.degree())

    def test_task1_is_bipartite(self):
        # Max-Cut 9 == all edges cut, so the graph must be bipartite
        assert nx.is_bipartite(three_regular_6())

    def test_benchmark_graph_selector(self):
        assert benchmark_graph(1).number_of_nodes() == 6
        assert benchmark_graph(3).number_of_nodes() == 8
        with pytest.raises(ProblemError):
            benchmark_graph(4)

    def test_random_regular(self):
        graph = random_regular_graph(3, 10, seed=1)
        assert all(d == 3 for _, d in graph.degree())
        with pytest.raises(ProblemError):
            random_regular_graph(3, 7)


class TestMaxCutProblem:
    def test_cut_value_int_and_string(self):
        problem = MaxCutProblem(three_regular_6())
        # alternating partition of the bipartite M6: cuts all ring edges
        assert problem.cut_value(0b010101) == 9
        assert problem.cut_value("010101") == 9
        assert problem.cut_value(0) == 0

    def test_cut_values_vector(self):
        problem = MaxCutProblem(three_regular_6())
        values = problem.cut_values()
        assert values.shape == (64,)
        assert values.max() == 9
        assert values[0] == 0

    def test_optimal_configurations_complementary(self):
        problem = MaxCutProblem(three_regular_6())
        optima = problem.optimal_configurations()
        assert len(optima) == 2
        assert optima[0] ^ optima[1] == 0b111111  # complements

    def test_expected_cut(self):
        problem = MaxCutProblem(three_regular_6())
        counts = {"010101": 50, "000000": 50}
        assert problem.expected_cut(counts) == pytest.approx(4.5)

    def test_cvar_selects_best_fraction(self):
        problem = MaxCutProblem(three_regular_6())
        counts = {"010101": 30, "000000": 70}
        # best 30% of shots are all optimal
        assert problem.cvar_cut(counts, 0.3) == pytest.approx(9.0)
        # alpha=1 reduces to the expectation
        assert problem.cvar_cut(counts, 1.0) == pytest.approx(
            problem.expected_cut(counts)
        )

    def test_cvar_partial_bucket(self):
        problem = MaxCutProblem(three_regular_6())
        counts = {"010101": 10, "000000": 90}
        # best 20% = 10 optimal shots + 10 zero-cut shots
        assert problem.cvar_cut(counts, 0.2) == pytest.approx(4.5)

    def test_cvar_alpha_bounds(self):
        problem = MaxCutProblem(three_regular_6())
        with pytest.raises(ProblemError):
            problem.cvar_cut({"000000": 1}, 0.0)

    def test_approximation_ratio(self):
        problem = MaxCutProblem(three_regular_6())
        assert problem.approximation_ratio(4.5) == pytest.approx(0.5)

    def test_weighted_graph(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.5)
        problem = MaxCutProblem(graph)
        assert problem.maximum_cut() == pytest.approx(2.5)

    def test_empty_graph_rejected(self):
        with pytest.raises(ProblemError):
            MaxCutProblem(nx.Graph())

    def test_bad_labels_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ProblemError):
            MaxCutProblem(graph)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_cvar_at_least_expectation_property(self, seed):
        rng = np.random.default_rng(seed)
        problem = MaxCutProblem(three_regular_6())
        keys = [format(i, "06b") for i in rng.integers(0, 64, 6)]
        counts = {k: int(c) for k, c in zip(keys, rng.integers(1, 100, 6))}
        expectation = problem.expected_cut(counts)
        cvar = problem.cvar_cut(counts, 0.3)
        assert cvar >= expectation - 1e-9


class TestIsing:
    def test_maxcut_energy_is_negative_cut(self):
        problem = MaxCutProblem(three_regular_6())
        ising = maxcut_to_ising(problem.graph)
        for config in (0, 0b010101, 0b111111, 0b001011):
            assert ising.energy(config) == pytest.approx(
                -problem.cut_value(config)
            )

    def test_diagonal_matches_energy(self):
        ising = maxcut_to_ising(erdos_renyi_6())
        diag = ising.diagonal()
        for config in (0, 5, 17, 63):
            assert diag[config] == pytest.approx(ising.energy(config))

    def test_ground_state_energy(self):
        problem = MaxCutProblem(three_regular_8())
        ising = problem.to_ising()
        assert ising.ground_state_energy() == pytest.approx(-10.0)

    def test_fields(self):
        ising = IsingModel(2, {(0, 1): 1.0}, fields={0: 0.5})
        # |00>: z0=z1=+1 -> 1.0 + 0.5
        assert ising.energy(0) == pytest.approx(1.5)
        # |01>: z0=-1 -> coupling -1, field -0.5
        assert ising.energy(1) == pytest.approx(-1.5)

    def test_validation(self):
        with pytest.raises(ProblemError):
            IsingModel(2, {(0, 0): 1.0})
        with pytest.raises(ProblemError):
            IsingModel(2, {(0, 5): 1.0})
