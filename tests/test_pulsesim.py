"""Physics validation of the pulse simulator and calibration routines."""

import math

import numpy as np
import pytest

from repro.hamiltonian import DeviceModel, TransmonQubit
from repro.pulse import (
    Constant,
    DriveChannel,
    Gaussian,
    Play,
    Schedule,
    ShiftFrequency,
    ShiftPhase,
)
from repro.pulsesim import (
    calibrate_cr,
    calibrate_rotation,
    calibrate_sx,
    calibrate_x,
    cr_pair_propagator,
    cx_unitary_from_cr,
    dense_schedule_propagator,
    drive_channel_propagator,
    schedule_drive_unitaries,
    su2_propagator,
)
from repro.utils.linalg import is_unitary, process_fidelity

X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
CX_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
)


def rx(theta):
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def single_qubit_device(**kwargs):
    return DeviceModel([TransmonQubit(**kwargs)])


def coupled_pair_device(j=0.005, step=0.08):
    return DeviceModel(
        [
            TransmonQubit(frequency=5.0),
            TransmonQubit(frequency=5.0 + step),
        ],
        couplings=[(0, 1, j)],
    )


class TestSU2:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(
            su2_propagator(0, 0, 0, 1.0), np.eye(2), atol=1e-14
        )

    def test_x_rotation(self):
        # exp(-i t (h X)) with 2 h t = theta
        theta = 0.8
        u = su2_propagator(theta / 2, 0, 0, 1.0)
        np.testing.assert_allclose(u, rx(theta), atol=1e-12)

    def test_always_unitary(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            h = rng.normal(size=3)
            u = su2_propagator(*h, rng.uniform(0, 10))
            assert is_unitary(u)


class TestDriveChannelPropagator:
    def test_resonant_constant_pulse_angle(self):
        device = single_qubit_device()
        qubit = device.qubits[0]
        amp, duration = 0.5, 320
        sched = Schedule(
            (0, Play(Constant(duration, amp), DriveChannel(0)))
        )
        unitary = drive_channel_propagator(
            sched.channel_timeline(DriveChannel(0)),
            device,
            0,
            include_stark=False,
        )
        theta = 2 * math.pi * qubit.drive_strength * amp * duration * device.dt
        np.testing.assert_allclose(unitary, rx(theta), atol=1e-9)

    def test_phase_rotates_axis(self):
        device = single_qubit_device()
        duration, amp = 320, 0.3
        sched = Schedule()
        sched.append(ShiftPhase(math.pi / 2, DriveChannel(0)))
        sched.append(Play(Constant(duration, amp), DriveChannel(0)))
        unitary = drive_channel_propagator(
            sched.channel_timeline(DriveChannel(0)),
            device,
            0,
            include_stark=False,
        )
        theta = (
            2 * math.pi * device.qubits[0].drive_strength * amp
            * duration * device.dt
        )
        ry = np.array(
            [
                [math.cos(theta / 2), -math.sin(theta / 2)],
                [math.sin(theta / 2), math.cos(theta / 2)],
            ],
            dtype=complex,
        )
        np.testing.assert_allclose(unitary, ry, atol=1e-9)

    def test_empty_timeline_is_identity(self):
        device = single_qubit_device()
        unitary = drive_channel_propagator([], device, 0)
        np.testing.assert_allclose(unitary, np.eye(2))

    def test_detuned_drive_reduces_transfer(self):
        device = single_qubit_device()
        d0 = DriveChannel(0)
        resonant = Schedule((0, Play(Gaussian(320, 0.4, 80), d0)))
        shifted = Schedule()
        shifted.append(ShiftFrequency(0.05, d0))  # 50 MHz off-resonance
        shifted.append(Play(Gaussian(320, 0.4, 80), d0))
        u_res = drive_channel_propagator(
            resonant.channel_timeline(d0), device, 0, include_stark=False
        )
        u_det = drive_channel_propagator(
            shifted.channel_timeline(d0), device, 0, include_stark=False
        )
        assert abs(u_det[1, 0]) < abs(u_res[1, 0])

    def test_stark_shift_tilts_axis(self):
        device = single_qubit_device()
        d0 = DriveChannel(0)
        sched = Schedule((0, Play(Gaussian(128, 0.9, 32), d0)))
        timeline = sched.channel_timeline(d0)
        with_stark = drive_channel_propagator(timeline, device, 0, True)
        without = drive_channel_propagator(timeline, device, 0, False)
        # stark shift visibly changes the unitary at high amplitude
        assert process_fidelity(with_stark, without) < 0.999

    def test_matches_dense_solver(self):
        device = single_qubit_device()
        d0 = DriveChannel(0)
        sched = Schedule()
        sched.append(Play(Gaussian(160, 0.7, 40), d0))
        sched.append(ShiftPhase(0.7, d0))
        sched.append(Play(Gaussian(96, 0.4, 24, angle=0.3), d0))
        fast = drive_channel_propagator(
            sched.channel_timeline(d0), device, 0
        )
        dense = dense_schedule_propagator(sched, device, [0], substeps=1)
        assert process_fidelity(fast, dense) > 1 - 1e-9

    def test_schedule_drive_unitaries_multi_qubit(self):
        device = DeviceModel([TransmonQubit(), TransmonQubit(frequency=5.08)])
        sched = Schedule()
        sched.append(Play(Gaussian(160, 0.5, 40), DriveChannel(0)))
        sched.append(Play(Gaussian(160, 0.25, 40), DriveChannel(1)))
        out = schedule_drive_unitaries(sched, device, [0, 1])
        assert set(out) == {0, 1}
        assert is_unitary(out[0]) and is_unitary(out[1])
        # different amplitudes -> different rotation angles
        assert abs(out[0][1, 0]) > abs(out[1][1, 0])


class TestSingleQubitCalibration:
    def test_x_calibration_high_fidelity(self):
        device = single_qubit_device()
        cal = calibrate_x(device, 0)
        assert cal.fidelity > 0.9995
        assert 0 < cal.amp <= 1
        assert cal.duration == 160
        # acts like X on |0>
        final = cal.unitary @ np.array([1, 0], dtype=complex)
        assert abs(final[1]) ** 2 > 0.999

    def test_sx_calibration(self):
        device = single_qubit_device()
        cal = calibrate_sx(device, 0)
        assert cal.fidelity > 0.9995
        # half the X rotation: |<1|U|0>|^2 = 1/2
        final = cal.unitary @ np.array([1, 0], dtype=complex)
        assert abs(final[1]) ** 2 == pytest.approx(0.5, abs=1e-3)

    def test_sx_amp_roughly_half_x_amp(self):
        device = single_qubit_device()
        x = calibrate_x(device, 0)
        sx = calibrate_sx(device, 0)
        assert sx.amp == pytest.approx(x.amp / 2, rel=0.05)

    def test_infeasible_duration_raises(self):
        from repro.exceptions import CalibrationError

        device = single_qubit_device(drive_strength=0.005)
        with pytest.raises(CalibrationError):
            calibrate_x(device, 0, duration=32)

    def test_phase_pi_gives_negative_rotation(self):
        device = single_qubit_device()
        cal = calibrate_rotation(device, 0, math.pi / 2, phase=math.pi)
        target = rx(-math.pi / 2)
        assert process_fidelity(cal.unitary, target) > 0.999

    def test_schedule_roundtrip(self):
        # simulating the stored schedule reproduces the stored unitary
        device = single_qubit_device()
        cal = calibrate_x(device, 0)
        unitary = drive_channel_propagator(
            cal.schedule.channel_timeline(DriveChannel(0)), device, 0
        )
        np.testing.assert_allclose(unitary, cal.unitary, atol=1e-12)


class TestCrossResonance:
    def test_cr_propagator_unitary(self):
        device = coupled_pair_device()
        samples = Constant(320, 0.8).samples()
        unitary = cr_pair_propagator(samples, device, 0, 1)
        assert is_unitary(unitary)

    def test_uncoupled_pair_raises(self):
        from repro.exceptions import PulseError

        device = DeviceModel(
            [TransmonQubit(), TransmonQubit(frequency=5.08)]
        )
        with pytest.raises(PulseError):
            cr_pair_propagator(
                Constant(64, 0.5).samples(), device, 0, 1
            )

    def test_cr_calibration_finds_pi_2(self):
        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        assert cal.width_pi_2 > 0
        angle = cal.zx_angle(device, cal.width_pi_2)
        assert angle == pytest.approx(math.pi / 2, abs=1e-4)

    def test_echo_approximates_rzx(self):
        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        echo, _ = cal.scaled_unitary(device, math.pi / 2)
        from repro.circuits import standard_gate

        target = standard_gate("rzx", [math.pi / 2]).matrix()
        assert process_fidelity(echo, target) > 0.95

    def test_raw_echo_needs_z_corrections(self):
        # the uncorrected echo carries residual local Z phases (and the
        # deterministic -1 from the two echo X pulses); virtual-Z
        # correction is what recovers the RZX target
        from repro.circuits import standard_gate
        from repro.pulsesim.calibration import virtual_z_corrected

        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        raw = cal.echoed_unitary(device, cal.width_pi_2, phase=math.pi)
        target = standard_gate("rzx", [math.pi / 2]).matrix()
        corrected, fidelity, _ = virtual_z_corrected(raw, target)
        assert process_fidelity(corrected, target) > 0.95
        assert process_fidelity(corrected, target) > process_fidelity(
            raw, target
        )

    def test_cx_fidelity(self):
        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        unitary, duration, fidelity = cx_unitary_from_cr(device, cal)
        assert fidelity > 0.95
        assert duration > 0
        assert is_unitary(unitary)

    def test_scaled_width_monotone_angle(self):
        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        w_small = cal.width_for_angle(device, 0.8)
        w_big = cal.width_for_angle(device, 1.2)
        assert w_small < w_big < cal.width_pi_2

    def test_below_floor_angle_uses_amp_scaling(self):
        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        small = cal.zx_angle_at_zero_width * 0.8
        from repro.circuits import standard_gate

        unitary, duration = cal.scaled_unitary(device, small)
        target = standard_gate("rzx", [small]).matrix()
        # small angles bottom out at the exchange-dressing floor, so the
        # bar is lower than for flat-top-dominated angles
        assert process_fidelity(unitary, target) > 0.9
        assert duration == cal.total_duration(0.0)

    def test_scaled_unitary_angles(self):
        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        from repro.circuits import standard_gate

        for theta in (0.5, 1.0, math.pi / 2):
            unitary, duration = cal.scaled_unitary(device, theta)
            target = standard_gate("rzx", [theta]).matrix()
            assert process_fidelity(unitary, target) > 0.93
            assert duration % 16 == 0

    def test_negative_angle(self):
        device = coupled_pair_device()
        cal = calibrate_cr(device, 0, 1, amp=0.9)
        from repro.circuits import standard_gate

        unitary, _ = cal.scaled_unitary(device, -0.8)
        target = standard_gate("rzx", [-0.8]).matrix()
        assert process_fidelity(unitary, target) > 0.93

    def test_cr_fast_path_matches_dense(self):
        device = coupled_pair_device()
        from repro.pulse import ControlChannel, GaussianSquare

        pulse = GaussianSquare(320, 0.8, 32, width=192)
        sched = Schedule(
            (0, Play(pulse, device.control_channel(0, 1)))
        )
        fast = cr_pair_propagator(pulse.samples(), device, 0, 1)
        dense = dense_schedule_propagator(
            sched, device, [0, 1], substeps=8
        )
        assert process_fidelity(fast, dense) > 1 - 1e-4
