"""Tests for the co-optimization workflow and duration search.

These use reduced optimizer budgets (the full-budget behaviour is
exercised by the experiment drivers and recorded in EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.backends import FakeAuckland, FakeToronto
from repro.core import (
    ExecutionPipeline,
    GateLevelModel,
    HybridGatePulseModel,
    HybridWorkflow,
    binary_search_mixer_duration,
    train_model,
)
from repro.exceptions import ProblemError
from repro.problems import MaxCutProblem, three_regular_6
from repro.vqa import ExpectedCutCost
from repro.vqa.optimizers import COBYLA


@pytest.fixture(scope="module")
def backend():
    return FakeToronto()


@pytest.fixture(scope="module")
def problem():
    return MaxCutProblem(three_regular_6())


class TestWorkflowStages:
    def test_stage_pipelines_configured(self, problem, backend):
        workflow = HybridWorkflow(
            problem, backend, GateLevelModel(problem), seed=1
        )
        raw = workflow._pipeline("raw")
        go = workflow._pipeline("go")
        m3 = workflow._pipeline("m3")
        cvar = workflow._pipeline("cvar")
        assert not raw.gate_optimization and not raw.use_m3
        assert go.gate_optimization and not go.use_m3
        assert m3.gate_optimization and m3.use_m3
        assert cvar.use_m3 and cvar.cost.name == "cvar"

    def test_unknown_stage(self, problem, backend):
        workflow = HybridWorkflow(
            problem, backend, GateLevelModel(problem)
        )
        with pytest.raises(ProblemError):
            workflow.run_stage("bogus")

    def test_run_stage_result_fields(self, problem, backend):
        workflow = HybridWorkflow(
            problem,
            backend,
            GateLevelModel(problem),
            optimizer_factory=lambda: COBYLA(maxiter=6),
            shots=256,
            seed=4,
        )
        result = workflow.run_stage("raw")
        assert 0.0 <= result.approximation_ratio <= 1.0
        assert result.mixer_duration == 320
        assert result.circuit_duration > 0
        assert result.train.iterations > 0

    def test_cvar_stage_scores_higher(self, problem, backend):
        workflow = HybridWorkflow(
            problem,
            backend,
            GateLevelModel(problem),
            optimizer_factory=lambda: COBYLA(maxiter=8),
            shots=1024,
            seed=6,
        )
        raw = workflow.run_stage("raw")
        cvar = workflow.run_stage("cvar")
        assert cvar.approximation_ratio > raw.approximation_ratio

    def test_pulse_optimization_requires_hybrid(self, problem, backend):
        workflow = HybridWorkflow(
            problem,
            backend,
            GateLevelModel(problem),
            optimizer_factory=lambda: COBYLA(maxiter=5),
            shots=256,
            seed=2,
        )
        result = workflow.run_stage("raw")
        with pytest.raises(ProblemError):
            workflow.pulse_optimization(result.train)


class TestDurationSearch:
    def test_search_compresses_substantially(self, problem, backend):
        """The search cuts the mixer by >= 40% on the 32 dt grid.

        (The full-budget run lands at exactly 128 dt / 60%, the paper's
        number — see EXPERIMENTS.md; at this test's reduced training
        budget the AR threshold may stop one or two grid steps earlier.)
        """
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=512
        )
        model = HybridGatePulseModel(problem, backend.device)
        trained = train_model(
            model, pipeline, COBYLA(maxiter=20), seed=9
        )
        search = binary_search_mixer_duration(
            model,
            pipeline,
            trained.best_parameters,
            seed=10,
            evaluations_per_point=1,
        )
        assert search.duration % 32 == 0
        assert search.duration <= 192  # >= 40% reduction
        assert search.reduction >= 0.4
        # 128 dt is always amp-feasible; below it the |amp| <= 1 bound
        # bites whenever the search descends that far
        assert all(
            duration < 128
            for duration, reason in search.infeasible.items()
            if "amp" in reason
        )

    def test_search_restores_model_duration(self, problem, backend):
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=256
        )
        model = HybridGatePulseModel(problem, backend.device)
        params = model.initial_point(3)
        binary_search_mixer_duration(
            model, pipeline, params, seed=1, evaluations_per_point=1
        )
        assert model.mixer_pulse_duration == 320

    def test_granularity_validation(self, problem, backend):
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem)
        )
        model = HybridGatePulseModel(problem, backend.device)
        with pytest.raises(ProblemError):
            binary_search_mixer_duration(
                model, pipeline, model.initial_point(0), minimum=20
            )


class TestCrossBackend:
    def test_auckland_runs_too(self, problem):
        backend = FakeAuckland()
        workflow = HybridWorkflow(
            problem,
            backend,
            HybridGatePulseModel(problem, backend.device),
            optimizer_factory=lambda: COBYLA(maxiter=5),
            shots=256,
            seed=8,
        )
        result = workflow.run_stage("raw")
        assert 0.0 <= result.approximation_ratio <= 1.0
