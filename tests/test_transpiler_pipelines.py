"""Randomized equivalence gauntlet for the preset pipelines.

Every preset optimization level (0-3) must preserve circuit semantics:
exact unitary equivalence (with layout-permutation accounting) at small
widths, fixed-seed engine counts at widths where building the unitary
is unaffordable.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.transpiler import (
    CouplingMap,
    transpile,
    transpiled_counts_equivalent,
    transpiled_distribution_equivalent,
    transpiled_unitary_equivalent,
    verify_transpiled,
)

LEVELS = (0, 1, 2, 3)


def _random_circuit(
    rng: np.random.Generator, num_qubits: int, num_gates: int
) -> QuantumCircuit:
    """Gate soup mixing Clifford, rotations, and symmetric 2q gates."""
    qc = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        kind = int(rng.integers(9))
        q = int(rng.integers(num_qubits))
        r = int(rng.integers(num_qubits - 1))
        r = r if r < q else r + 1  # distinct second qubit
        angle = float(rng.uniform(-2 * math.pi, 2 * math.pi))
        if kind == 0:
            qc.h(q)
        elif kind == 1:
            qc.rz(angle, q)
        elif kind == 2:
            qc.rx(angle, q)
        elif kind == 3:
            qc.t(q)
        elif kind == 4:
            qc.cx(q, r)
        elif kind == 5:
            qc.cz(q, r)
        elif kind == 6:
            qc.rzz(angle, q, r)
        elif kind == 7:
            qc.sx(q)
        else:
            qc.crz(angle, q, r)
    return qc


class TestUnitaryGauntlet:
    """Small widths: exact process-level equivalence per level."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_levels_preserve_unitary_3q(self, seed):
        rng = np.random.default_rng(seed)
        qc = _random_circuit(rng, 3, 14)
        coupling = CouplingMap.from_line(3)
        for level in LEVELS:
            out = transpile(
                qc, coupling, optimization_level=level, seed=seed
            )
            assert transpiled_unitary_equivalent(qc, out), (
                f"level {level} broke seed {seed}"
            )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_levels_preserve_unitary_5q_ring(self, seed):
        rng = np.random.default_rng(seed)
        qc = _random_circuit(rng, 5, 20)
        coupling = CouplingMap.from_ring(5)
        for level in LEVELS:
            out = transpile(
                qc, coupling, optimization_level=level, seed=seed
            )
            assert transpiled_unitary_equivalent(qc, out), (
                f"level {level} broke seed {seed}"
            )


class TestDistributionGauntlet:
    """Wider circuits: exact measured-distribution comparison."""

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_levels_preserve_distribution_12q(self, seed):
        rng = np.random.default_rng(seed)
        qc = _random_circuit(rng, 12, 36)
        qc.measure_all()
        coupling = CouplingMap.from_line(12)
        for level in LEVELS:
            out = transpile(
                qc, coupling, optimization_level=level, seed=seed
            )
            assert transpiled_distribution_equivalent(qc, out), (
                f"level {level} broke seed {seed}"
            )

    def test_verify_report_picks_distribution_for_wide_circuits(self):
        qc = QuantumCircuit(12, 12)
        qc.h(0)
        for q in range(11):
            qc.cx(q, q + 1)
        qc.measure_all()
        out = transpile(
            qc, CouplingMap.from_line(12), optimization_level=2, seed=3
        )
        report = verify_transpiled(qc, out)
        assert report == {
            "method": "statevector_distribution", "equivalent": True,
        }

    def test_verify_report_falls_back_to_counts_past_22q(self):
        qc = QuantumCircuit(22, 22)
        qc.h(0)
        for q in range(21):
            qc.cx(q, q + 1)
        qc.measure_all()
        out = transpile(
            qc, CouplingMap.from_line(22), optimization_level=2, seed=3
        )
        report = verify_transpiled(qc, out, shots=512)
        assert report == {
            "method": "fixed_seed_counts", "equivalent": True,
        }

    def test_verify_report_picks_unitary_for_narrow_circuits(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.rzz(0.4, 1, 2)
        out = transpile(
            qc, CouplingMap.from_line(3), optimization_level=3, seed=3
        )
        report = verify_transpiled(qc, out)
        assert report == {"method": "unitary", "equivalent": True}


class TestVerificationCatchesBreakage:
    """The gate must actually close: corrupt circuits are rejected."""

    def test_unitary_check_rejects_dropped_gate(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.t(1)
        broken = QuantumCircuit(2)
        broken.h(0)
        broken.cx(0, 1)
        assert not transpiled_unitary_equivalent(qc, broken)

    def test_unitary_check_rejects_wrong_global_phase_scaling(self):
        # process fidelity forgives global phase but nothing else
        qc = QuantumCircuit(1)
        qc.rz(0.7, 0)
        other = QuantumCircuit(1)
        other.rz(0.7 + 1e-3, 0)
        assert not transpiled_unitary_equivalent(qc, other)

    def test_distribution_check_rejects_one_gate_perturbation(self):
        qc = QuantumCircuit(12, 12)
        qc.h(0)
        for q in range(11):
            qc.cx(q, q + 1)
        qc.rx(0.3, 5)
        qc.measure_all()
        other = qc.copy()
        kept = list(other.instructions)
        del kept[12]  # drop the rx
        other.instructions.clear()
        other.instructions.extend(kept)
        assert not transpiled_distribution_equivalent(qc, other)

    def test_counts_check_rejects_structural_change(self):
        qc = QuantumCircuit(12, 12)
        qc.h(0)
        for q in range(11):
            qc.cx(q, q + 1)
        qc.measure_all()
        broken = qc.copy()
        kept = [
            inst
            for idx, inst in enumerate(broken.instructions)
            if idx != 5  # drop one ladder CX
        ]
        broken.instructions.clear()
        broken.instructions.extend(kept)
        assert not transpiled_counts_equivalent(qc, broken, shots=512, seed=9)

    def test_counts_check_forgives_exact_half_tie_shuffle(self):
        # GHZ: both outcomes at exactly p = 0.5; the sampler's binomial
        # branch can shuffle shots between them under fixed seed
        qc = QuantumCircuit(12, 12)
        qc.h(0)
        for q in range(11):
            qc.cx(q, q + 1)
        qc.measure_all()
        out = transpile(
            qc, CouplingMap.from_line(12), optimization_level=1, seed=5
        )
        assert transpiled_counts_equivalent(qc, out, shots=2048, seed=1234)
