"""Tests for noise channels, readout errors and noise models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoiseError
from repro.noise import (
    KrausChannel,
    NoiseModel,
    ReadoutError,
    amplitude_damping_channel,
    coherent_overrotation_channel,
    depolarizing_channel,
    pauli_channel,
    phase_damping_channel,
    thermal_relaxation_channel,
)


class TestKrausChannel:
    def test_completeness_enforced(self):
        with pytest.raises(NoiseError):
            KrausChannel([0.5 * np.eye(2)])

    def test_identity_detection(self):
        chan = KrausChannel([np.eye(2)])
        assert chan.is_identity()
        assert not depolarizing_channel(0.1).is_identity()

    def test_compose(self):
        a = amplitude_damping_channel(0.3)
        b = phase_damping_channel(0.2)
        combined = a.compose(b)
        assert combined.dim == 2
        # completeness survives composition (checked in constructor)

    def test_expand(self):
        a = depolarizing_channel(0.1)
        b = depolarizing_channel(0.2)
        two = a.expand(b)
        assert two.num_qubits == 2

    def test_average_gate_fidelity(self):
        ident = KrausChannel([np.eye(2)])
        assert ident.average_gate_fidelity() == pytest.approx(1.0)
        depol = depolarizing_channel(0.1)
        assert depol.average_gate_fidelity() < 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 1.0))
    def test_depolarizing_fidelity_formula(self, p):
        chan = depolarizing_channel(p, 1)
        # depolarizing AGF = 1 - p/2 for a single qubit
        assert chan.average_gate_fidelity() == pytest.approx(
            1 - p / 2, abs=1e-9
        )


class TestChannelFactories:
    def test_pauli_channel(self):
        chan = pauli_channel({"X": 0.1, "Z": 0.05})
        assert len(chan.kraus_ops) == 3

    def test_pauli_channel_two_qubit_label(self):
        chan = pauli_channel({"XI": 0.1}, num_qubits=2)
        assert chan.num_qubits == 2

    def test_pauli_bad_probability(self):
        with pytest.raises(NoiseError):
            pauli_channel({"X": 1.5})

    def test_depolarizing_bounds(self):
        with pytest.raises(NoiseError):
            depolarizing_channel(-0.1)
        with pytest.raises(NoiseError):
            depolarizing_channel(1.1)

    def test_thermal_relaxation_zero_time_identity(self):
        chan = thermal_relaxation_channel(1e5, 1e5, 0.0)
        assert chan.is_identity()

    def test_thermal_relaxation_decays_excited(self):
        from repro.simulators import DensityMatrix, Statevector

        chan = thermal_relaxation_channel(100.0, 100.0, 100.0)
        rho = DensityMatrix(Statevector.from_label("1"))
        rho.apply_kraus(chan.kraus_ops, [0])
        p1 = rho.probabilities()[1]
        assert p1 == pytest.approx(np.exp(-1.0), abs=1e-6)

    def test_thermal_relaxation_dephases(self):
        from repro.simulators import DensityMatrix, Statevector

        chan = thermal_relaxation_channel(1e9, 100.0, 100.0)
        rho = DensityMatrix(Statevector.from_label("+"))
        rho.apply_kraus(chan.kraus_ops, [0])
        assert abs(rho.data[0, 1]) < 0.5

    def test_unphysical_t2_rejected(self):
        with pytest.raises(NoiseError):
            thermal_relaxation_channel(100.0, 300.0, 10.0)

    def test_coherent_overrotation(self):
        chan = coherent_overrotation_channel("Z", 0.1)
        assert len(chan.kraus_ops) == 1
        with pytest.raises(NoiseError):
            coherent_overrotation_channel("W", 0.1)


class TestReadoutError:
    def test_uniform(self):
        readout = ReadoutError.uniform(2, 0.05)
        p10, p01 = readout.flip_probabilities(0)
        assert p10 == pytest.approx(0.05)
        assert p01 == pytest.approx(0.05)

    def test_asymmetric(self):
        readout = ReadoutError.asymmetric(1, p01=0.06, p10=0.02)
        p10, p01 = readout.flip_probabilities(0)
        assert p10 == pytest.approx(0.02)
        assert p01 == pytest.approx(0.06)

    def test_apply_to_probabilities(self):
        readout = ReadoutError.uniform(1, 0.1)
        noisy = readout.apply_to_probabilities(np.array([1.0, 0.0]))
        np.testing.assert_allclose(noisy, [0.9, 0.1], atol=1e-12)

    def test_apply_preserves_total(self):
        readout = ReadoutError.uniform(3, 0.07)
        rng = np.random.default_rng(0)
        probs = rng.random(8)
        probs /= probs.sum()
        noisy = readout.apply_to_probabilities(probs)
        assert noisy.sum() == pytest.approx(1.0)

    def test_sample_counts_preserves_shots(self):
        readout = ReadoutError.uniform(2, 0.2)
        noisy = readout.sample_counts({"00": 50, "11": 50}, seed=1)
        assert sum(noisy.values()) == 100

    def test_assignment_probability_product(self):
        readout = ReadoutError.uniform(2, 0.1)
        assert readout.assignment_probability(0b00, 0b00) == pytest.approx(
            0.81
        )
        assert readout.assignment_probability(0b01, 0b00) == pytest.approx(
            0.09
        )
        assert readout.assignment_probability(0b11, 0b00) == pytest.approx(
            0.01
        )

    def test_subset(self):
        readout = ReadoutError.asymmetric(3, p01=0.06, p10=0.02)
        sub = readout.subset([2, 0])
        assert sub.num_qubits == 2

    def test_rate_bounds(self):
        with pytest.raises(NoiseError):
            ReadoutError.uniform(1, 0.7)

    def test_bad_matrix(self):
        with pytest.raises(NoiseError):
            ReadoutError([np.array([[0.9, 0.3], [0.2, 0.7]])])


class TestNoiseModel:
    def test_gate_error_lookup(self):
        model = NoiseModel(3)
        model.add_depolarizing_error("cx", 0.01, 2)
        model.add_depolarizing_error(
            "cx", 0.05, 2, qubits=[0, 1]
        )
        generic = model.gate_channels("cx", (1, 2))
        specific = model.gate_channels("cx", (0, 1))
        assert len(generic) == 1
        assert len(specific) == 2  # generic + pair-specific

    def test_relaxation_channel(self):
        model = NoiseModel(1)
        model.set_relaxation(1e5, 1e5, 2.0 / 9.0)
        chan = model.relaxation_channel(0, 160)
        assert chan is not None
        assert model.relaxation_channel(0, 0) is None

    def test_relaxation_disabled_by_default(self):
        model = NoiseModel(1)
        assert model.relaxation_channel(0, 160) is None
        assert not model.has_relaxation

    def test_readout_size_check(self):
        model = NoiseModel(2)
        with pytest.raises(NoiseError):
            model.set_readout_error(ReadoutError.uniform(3, 0.1))

    def test_pulse_gate_channel(self):
        model = NoiseModel(2)
        assert model.pulse_gate_channel(1, 320) is None
        model.pulse_error_per_dt_1q = 1e-6
        chan = model.pulse_gate_channel(1, 320)
        assert chan is not None
        assert chan.num_qubits == 1
        model.pulse_error_per_dt_2q = 1e-6
        assert model.pulse_gate_channel(2, 320).num_qubits == 2
