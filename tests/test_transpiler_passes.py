"""Unit tests for the optimization-tier passes and the cancellation
bugfixes (per-gate zero-rotation periods, symmetric-operand
canonicalization, measure-safe routing)."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, standard_gate
from repro.simulators import circuit_to_unitary
from repro.transpiler import (
    CliffordBlockAnalysis,
    CommutationReorder,
    CommutativeCancellation,
    CouplingMap,
    PhaseGadgetFusion,
    SelfInverseCancellation,
    SingleQubitResynthesis,
    TranspileContext,
    gates_commute,
)
from repro.transpiler.passes.rules import (
    ROTATION_PERIODS,
    SYMMETRIC_GATES,
    canonical_qubits,
    zero_rotation_phase,
)
from repro.transpiler.passes.routing import SabreSwap

TWO_PI = 2.0 * math.pi


def _exact_equal(circuit_a, circuit_b):
    """Unitary equality *including* global phase."""
    return np.allclose(
        circuit_to_unitary(circuit_a), circuit_to_unitary(circuit_b),
        atol=1e-9,
    )


class TestZeroRotationPeriods:
    """Regression: the old pass dropped any angle = 0 (mod 2pi)."""

    def test_crz_two_pi_is_not_identity(self):
        # crz(2pi) = Z (x) I — removing it corrupts the circuit
        qc = QuantumCircuit(2)
        qc.h(0)  # make the control-qubit phase observable
        qc.crz(TWO_PI, 0, 1)
        out = CommutativeCancellation()(qc)
        assert any(
            inst.operation.name == "crz" for inst in out.instructions
        ), "crz(2pi) was dropped"
        assert _exact_equal(qc, out)

    def test_crz_four_pi_dropped(self):
        qc = QuantumCircuit(2)
        qc.crz(2 * TWO_PI, 0, 1)
        out = CommutativeCancellation()(qc)
        assert out.size() == 0
        assert _exact_equal(qc, out)

    @pytest.mark.parametrize("name", ["rz", "rx", "ry"])
    def test_two_pi_rotation_dropped_with_global_phase(self, name):
        # r*(2pi) = -I: removable, but only with a tracked pi phase
        qc = QuantumCircuit(1)
        getattr(qc, name)(TWO_PI, 0)
        out = CommutativeCancellation()(qc)
        assert out.size() == 0
        assert out.global_phase == pytest.approx(math.pi)
        assert _exact_equal(qc, out)

    @pytest.mark.parametrize("name", ["rzz", "rxx", "ryy"])
    def test_two_qubit_two_pi_rotation_dropped_exactly(self, name):
        qc = QuantumCircuit(2)
        getattr(qc, name)(TWO_PI, 0, 1)
        out = CommutativeCancellation()(qc)
        assert out.size() == 0
        assert _exact_equal(qc, out)

    @pytest.mark.parametrize("name", ["p", "cp"])
    def test_phase_gates_are_two_pi_periodic(self, name):
        qc = QuantumCircuit(2)
        getattr(qc, name)(TWO_PI, 0, 1) if name == "cp" else getattr(
            qc, name
        )(TWO_PI, 0)
        out = CommutativeCancellation()(qc)
        assert out.size() == 0
        assert _exact_equal(qc, out)

    @pytest.mark.parametrize("name", sorted(ROTATION_PERIODS))
    def test_zero_rotation_phase_matches_matrices(self, name):
        """The rule table must agree with the actual gate matrices."""
        num_qubits = 1 if name in ("rz", "rx", "ry", "p") else 2
        dim = 1 << num_qubits
        for k in range(1, 5):
            angle = k * TWO_PI / 2  # pi, 2pi, 3pi, 4pi
            phase = zero_rotation_phase(name, angle)
            matrix = standard_gate(name, [angle]).matrix()
            if phase is None:
                assert not np.allclose(
                    matrix / matrix[0, 0], np.eye(dim), atol=1e-9
                ) or abs(abs(matrix[0, 0]) - 1) > 1e-9
            else:
                assert np.allclose(
                    matrix, np.exp(1j * phase) * np.eye(dim), atol=1e-9
                ), f"{name}({angle}) is not e^(i {phase}) I"


class TestSymmetricOperandCanonicalization:
    """Regression: exact tuple equality blocked cz(1,0) vs cz(0,1)."""

    @pytest.mark.parametrize("name", ["cz", "swap"])
    def test_self_inverse_cancels_across_operand_order(self, name):
        qc = QuantumCircuit(2)
        getattr(qc, name)(0, 1)
        getattr(qc, name)(1, 0)
        out = SelfInverseCancellation()(qc)
        assert out.size() == 0
        assert _exact_equal(qc, out)

    @pytest.mark.parametrize("name", ["rzz", "rxx", "ryy"])
    def test_rotations_merge_across_operand_order(self, name):
        qc = QuantumCircuit(2)
        getattr(qc, name)(0.3, 0, 1)
        getattr(qc, name)(0.4, 1, 0)
        out = CommutativeCancellation()(qc)
        assert out.size() == 1
        assert out.instructions[0].operation.params[0] == pytest.approx(0.7)
        assert _exact_equal(qc, out)

    def test_cp_merges_across_operand_order(self):
        qc = QuantumCircuit(2)
        qc.cp(0.3, 0, 1)
        qc.cp(0.4, 1, 0)
        out = CommutativeCancellation()(qc)
        assert out.size() == 1
        assert _exact_equal(qc, out)

    def test_cx_reversed_still_not_cancelled(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        out = SelfInverseCancellation()(qc)
        assert out.size() == 2

    def test_crz_not_symmetric(self):
        qc = QuantumCircuit(2)
        qc.crz(0.3, 0, 1)
        qc.crz(-0.3, 1, 0)
        out = CommutativeCancellation()(qc)
        assert out.size() == 2
        assert _exact_equal(qc, out)

    @pytest.mark.parametrize("name", sorted(SYMMETRIC_GATES))
    def test_symmetric_table_matches_matrices(self, name):
        params = [] if name in ("cz", "swap") else [0.37]
        gate = standard_gate(name, params)
        forward = QuantumCircuit(2)
        forward.append(gate, [0, 1])
        reverse = QuantumCircuit(2)
        reverse.append(gate, [1, 0])
        assert _exact_equal(forward, reverse)
        assert canonical_qubits(name, (1, 0)) == (0, 1)


class TestCommutationReorder:
    def test_rz_through_cx_control_cancels(self):
        qc = QuantumCircuit(2)
        qc.rz(0.5, 0)
        qc.cx(0, 1)
        qc.rz(-0.5, 0)
        out = CommutativeCancellation()(qc)
        assert out.count_ops() == {"cx": 1}
        assert _exact_equal(qc, out)

    def test_x_through_cx_target_cancels(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        qc.cx(0, 1)
        qc.x(1)
        out = CommutativeCancellation()(qc)
        assert out.count_ops() == {"cx": 1}
        assert _exact_equal(qc, out)

    def test_rzz_through_cx_controls(self):
        qc = QuantumCircuit(3)
        qc.rzz(0.4, 0, 1)
        qc.cx(0, 2)
        qc.cx(1, 2)
        qc.rzz(-0.4, 1, 0)
        out = CommutativeCancellation()(qc)
        assert out.count_ops() == {"cx": 2}
        assert _exact_equal(qc, out)

    def test_oracle_agrees_with_matrices(self):
        # every True the rule set returns must hold as matrices
        from repro.circuits.circuit import CircuitInstruction
        from repro.utils.linalg import embed_matrix

        pool = [
            ("rz", [0.3], (0,)), ("x", [], (1,)), ("t", [], (2,)),
            ("sx", [], (1,)), ("cx", [], (0, 1)), ("cx", [], (1, 2)),
            ("cx", [], (2, 0)), ("cz", [], (0, 2)), ("rzz", [0.5], (1, 2)),
            ("rxx", [0.7], (0, 1)), ("crz", [0.2], (2, 1)),
        ]
        for name_a, params_a, qubits_a in pool:
            for name_b, params_b, qubits_b in pool:
                inst_a = CircuitInstruction(
                    standard_gate(name_a, params_a), qubits_a
                )
                inst_b = CircuitInstruction(
                    standard_gate(name_b, params_b), qubits_b
                )
                if not gates_commute(inst_a, inst_b):
                    continue
                full_a = embed_matrix(
                    inst_a.operation.matrix(), qubits_a, 3
                )
                full_b = embed_matrix(
                    inst_b.operation.matrix(), qubits_b, 3
                )
                assert np.allclose(
                    full_a @ full_b, full_b @ full_a, atol=1e-9
                ), f"{name_a}{qubits_a} vs {name_b}{qubits_b}"

    def test_reorder_alone_preserves_unitary(self):
        qc = QuantumCircuit(3)
        qc.rz(0.2, 0)
        qc.cx(0, 1)
        qc.t(0)
        qc.cx(1, 2)
        qc.rz(-0.2, 0)
        out = CommutationReorder()(qc)
        assert _exact_equal(qc, out)


class TestPhaseGadgetFusion:
    def test_fuses_across_diagonal_block(self):
        qc = QuantumCircuit(3)
        qc.rzz(0.1, 0, 1)
        qc.cz(1, 2)
        qc.t(0)
        qc.rzz(0.2, 1, 0)
        out = PhaseGadgetFusion()(qc)
        assert out.count_ops()["rzz"] == 1
        assert _exact_equal(qc, out)

    def test_blocked_by_non_diagonal_gate(self):
        qc = QuantumCircuit(2)
        qc.rz(0.1, 0)
        qc.h(0)
        qc.rz(0.2, 0)
        out = PhaseGadgetFusion()(qc)
        assert out.count_ops()["rz"] == 2
        assert _exact_equal(qc, out)

    def test_distant_qubit_gate_does_not_block(self):
        qc = QuantumCircuit(3)
        qc.rz(0.1, 0)
        qc.sx(2)  # non-diagonal, but on an unrelated qubit
        qc.rz(0.2, 0)
        out = PhaseGadgetFusion()(qc)
        assert out.count_ops()["rz"] == 1
        assert _exact_equal(qc, out)

    def test_fused_zero_is_dropped(self):
        qc = QuantumCircuit(2)
        qc.rzz(0.4, 0, 1)
        qc.cz(0, 1)
        qc.rzz(-0.4, 1, 0)
        out = PhaseGadgetFusion()(qc)
        assert out.count_ops() == {"cz": 1}
        assert _exact_equal(qc, out)


class TestSingleQubitResynthesis:
    def test_collapses_long_run(self):
        qc = QuantumCircuit(1)
        for angle in (0.3, 0.25, -0.1):
            qc.rz(angle, 0)
            qc.sx(0)
            qc.rz(-angle / 2, 0)
        out = SingleQubitResynthesis()(qc)
        assert out.size() < qc.size()
        assert _exact_equal(qc, out)

    def test_diagonal_run_becomes_single_rz(self):
        qc = QuantumCircuit(1)
        qc.t(0)
        qc.rz(0.3, 0)
        qc.s(0)
        out = SingleQubitResynthesis()(qc)
        assert out.count_ops() == {"rz": 1}
        assert _exact_equal(qc, out)

    def test_identity_run_vanishes(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.h(0)
        qc.s(0)
        qc.sdg(0)
        out = SingleQubitResynthesis()(qc)
        assert out.size() == 0
        assert _exact_equal(qc, out)

    def test_minimal_run_kept_verbatim(self):
        qc = QuantumCircuit(1)
        qc.sx(0)
        out = SingleQubitResynthesis()(qc)
        assert [i.operation.name for i in out.instructions] == ["sx"]

    def test_runs_bounded_by_two_qubit_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(0)
        qc.cx(0, 1)
        qc.h(0)
        out = SingleQubitResynthesis()(qc)
        assert _exact_equal(qc, out)
        names = [i.operation.name for i in out.instructions]
        assert names == ["cx", "h"]

    def test_inactive_without_native_basis(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.h(0)
        out = SingleQubitResynthesis(basis={"u3", "cx"})(qc)
        assert out.size() == 2  # pass is the identity off-basis


class TestCliffordBlockAnalysis:
    def test_full_clifford_tag(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure_all()
        tagged = CliffordBlockAnalysis()(qc)
        tag = tagged.metadata["clifford_blocks"]
        assert tag["full"] and tag["prefix"] == tag["size"]

    def test_partial_prefix(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.t(0)  # non-Clifford
        qc.h(1)
        tag = CliffordBlockAnalysis()(qc).metadata["clifford_blocks"]
        assert tag == {"size": 4, "prefix": 2, "full": False}

    def test_snapped_rz_angles_count_as_clifford(self):
        qc = QuantumCircuit(1)
        qc.rz(math.pi / 2, 0)
        tag = CliffordBlockAnalysis()(qc).metadata["clifford_blocks"]
        assert tag["full"]

    def test_certificate_drives_stabilizer_support(self):
        from repro.backends import Target
        from repro.backends.engine import _CircuitPlan, _supports_stabilizer

        target = Target(2, CouplingMap.from_line(2))

        def support(circuit, tag):
            circuit.metadata["clifford_blocks"] = tag
            return _supports_stabilizer(_CircuitPlan(circuit, target), None)

        clifford = QuantumCircuit(2, 2)
        clifford.h(0)
        clifford.cx(0, 1)
        clifford.measure_all()
        size = len(clifford.instructions)
        # full certificate -> eligible without a gate scan
        assert support(clifford, {"size": size, "prefix": size, "full": True})
        # partial certificate vetoes outright
        assert not support(clifford, {"size": size, "prefix": 1, "full": False})
        # stale certificate (size mismatch) is ignored: the scan decides
        assert support(clifford, {"size": 1, "prefix": 1, "full": True})
        non_clifford = QuantumCircuit(1)
        non_clifford.t(0)
        assert not support(non_clifford, {"size": 7, "prefix": 7, "full": True})


class TestRoutingMeasureSafety:
    """Regression: mid-routing measure emission could double-measure a
    physical wire once a later SWAP moved another wire onto it."""

    def test_syndrome_style_circuit_measures_unique_wires(self):
        qc = QuantumCircuit(5, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(0, 3)
        qc.cx(1, 3)
        qc.cx(1, 4)
        qc.cx(2, 4)
        qc.cx(0, 2)
        qc.measure(3, 0)
        qc.measure(4, 1)
        for seed in range(6):
            ctx = TranspileContext()
            routed = SabreSwap(CouplingMap.from_line(5), seed=seed)(qc, ctx)
            measured = [
                inst.qubits[0]
                for inst in routed.instructions
                if inst.operation.name == "measure"
            ]
            assert len(measured) == len(set(measured))
            # measures use the final layout
            assert sorted(measured) == sorted(
                ctx.final_layout[w] for w in (3, 4)
            )
