"""Tests for bitstring helpers, RNG derivation and report rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.reporting import ascii_bars, percent, text_table
from repro.utils.bitstrings import (
    bit_at,
    bitstring_to_index,
    flip_bit,
    format_counts,
    hamming_distance,
    hamming_weight,
    index_to_bitstring,
    iter_bitstrings,
)
from repro.utils.rng import as_generator, derive_seed


class TestBitstrings:
    def test_roundtrip(self):
        assert index_to_bitstring(6, 3) == "110"
        assert bitstring_to_index("110") == 6

    def test_qubit_zero_rightmost(self):
        # qubit 0 set -> index 1 -> rightmost char '1'
        assert index_to_bitstring(1, 3) == "001"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_bitstring(8, 3)
        with pytest.raises(ValueError):
            index_to_bitstring(-1, 3)

    def test_parse_validation(self):
        with pytest.raises(ValueError):
            bitstring_to_index("102")
        with pytest.raises(ValueError):
            bitstring_to_index("")
        assert bitstring_to_index("1 0") == 2  # spaces tolerated

    def test_bit_operations(self):
        assert bit_at(0b101, 0) == 1
        assert bit_at(0b101, 1) == 0
        assert flip_bit(0b101, 1) == 0b111
        assert hamming_weight(0b1011) == 3
        assert hamming_distance(0b1100, 0b1010) == 2

    def test_iter_bitstrings(self):
        assert list(iter_bitstrings(2)) == ["00", "01", "10", "11"]

    def test_format_counts_sorted(self):
        text = format_counts({"01": 5, "10": 9, "11": 1}, top=2)
        assert text.startswith("{10: 9, 01: 5")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 10), st.integers(0, 1023))
    def test_roundtrip_property(self, num_bits, index):
        index %= 1 << num_bits
        assert bitstring_to_index(
            index_to_bitstring(index, num_bits)
        ) == index


class TestRng:
    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_from_int(self):
        a = as_generator(5).integers(1000)
        b = as_generator(5).integers(1000)
        assert a == b

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)
        assert derive_seed(1, "x", 2) != derive_seed(1, "x", 3)
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_derive_seed_none_stays_none(self):
        assert derive_seed(None, "anything") is None


class TestReporting:
    def test_text_table_alignment(self):
        table = text_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 100.25]],
            title="demo",
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # all rows share the same width
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_percent(self):
        assert percent(0.5432) == "54.3%"

    def test_ascii_bars(self):
        chart = ascii_bars(["a", "bb"], [0.5, 1.0], width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_ascii_bars_empty(self):
        assert ascii_bars([], []) == ""
