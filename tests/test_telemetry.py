"""Tests for the unified telemetry layer (src/repro/telemetry/).

The load-bearing guarantee is that telemetry is *observation only*:
for fixed seeds, results are byte-identical with tracing and recording
enabled or disabled, across every simulation method and worker count —
the span/record/metric paths never touch the engine's RNG.  On top of
that: trace trees have the documented shape (every shard dispatch and
fault event exactly once, parents correct), records survive torn
lines, and calibration reorders ``rank_methods`` only under the
explicit :func:`use_calibrated_costs` opt-in.
"""

import json
import logging

import numpy as np
import pytest

from repro.backends import FakeGuadalupe, select_method
from repro.circuits import QuantumCircuit
from repro.service import (
    CircuitJob,
    ExecutionService,
    FaultPolicy,
    FaultRule,
    ResultStore,
)
from repro.telemetry import (
    CostCalibration,
    TelemetryError,
    clear_calibrated_costs,
    clear_metrics,
    collect_records,
    collect_trace,
    current_span,
    fit_cost_calibration,
    inc,
    iter_records,
    merge_snapshot,
    metrics_baseline,
    metrics_delta,
    metrics_snapshot,
    observe,
    record,
    record_span,
    render_trace,
    set_gauge,
    set_record_sink,
    span,
    summarize_records,
    tracing_enabled,
    use_calibrated_costs,
)

SHOTS = 64

CLIFFORD_1Q = ["h", "s", "sdg", "x", "y", "z", "sx"]


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Telemetry state is process-global: every test starts clean."""
    clear_metrics()
    set_record_sink(None)
    clear_calibrated_costs()
    yield
    clear_metrics()
    set_record_sink(None)
    clear_calibrated_costs()


@pytest.fixture(scope="module")
def backend():
    backend = FakeGuadalupe()
    yield backend
    backend.close_services()


def generic_circuit(num_qubits: int, seed: int) -> QuantumCircuit:
    """Seeded random layered circuit (deliberately non-Clifford)."""
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, num_qubits)
    for layer in range(2):
        for q in range(num_qubits):
            qc.rz(float(rng.uniform(0, 2 * np.pi)), q)
            qc.sx(q)
        for q in range(layer % 2, num_qubits - 1, 2):
            qc.cx(q, q + 1)
    for q in range(num_qubits):
        qc.measure(q, q)
    return qc


def clifford_circuit(num_qubits: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, num_qubits)
    for layer in range(2):
        for q in range(num_qubits):
            name = CLIFFORD_1Q[int(rng.integers(len(CLIFFORD_1Q)))]
            getattr(qc, name)(q)
        for q in range(layer % 2, num_qubits - 1, 2):
            qc.cx(q, q + 1)
    for q in range(num_qubits):
        qc.measure(q, q)
    return qc


def counts_of(result):
    return [dict(e.counts) for e in result.experiments]


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_yields_none(self):
        assert not tracing_enabled()
        with span("anything", attr=1) as s:
            assert s is None
        assert current_span() is None
        assert record_span("event") is None

    def test_nesting_and_attributes(self):
        with collect_trace("t") as trace:
            with span("outer", level=0) as outer:
                with span("inner") as inner:
                    inner.annotate(found=True)
                assert current_span() is outer
        assert [root.name for root in trace.roots] == ["outer"]
        (outer,) = trace.roots
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.attributes == {"level": 0}
        assert outer.children[0].attributes == {"found": True}
        assert outer.wall_seconds >= outer.children[0].wall_seconds >= 0.0

    def test_record_span_grafts_children(self):
        payload = {
            "name": "remote",
            "wall_seconds": 0.5,
            "attributes": {"pid": 42},
            "children": [{"name": "leaf", "attributes": {}}],
        }
        with collect_trace() as trace:
            with span("parent"):
                record_span("dispatch", wall_seconds=1.0,
                            children=[payload], jobs=3)
        (dispatch,) = trace.find("dispatch")
        assert dispatch.attributes == {"jobs": 3}
        assert dispatch.wall_seconds == 1.0
        (remote,) = dispatch.children
        assert remote.attributes == {"pid": 42}
        assert [s.name for s in remote.iter_spans()] == ["remote", "leaf"]

    def test_traces_do_not_nest(self):
        with collect_trace():
            with pytest.raises(TelemetryError):
                with collect_trace():
                    pass  # pragma: no cover
        # the failed inner attempt must not have torn down the state
        assert not tracing_enabled()

    def test_exception_still_closes_span(self):
        with collect_trace() as trace:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (doomed,) = trace.roots
        assert doomed.name == "doomed"
        assert current_span() is None

    def test_serialization_roundtrip_and_render(self, tmp_path):
        with collect_trace("roundtrip") as trace:
            with span("a", x=1):
                with span("b"):
                    pass
        path = tmp_path / "trace.json"
        trace.save(path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-telemetry-trace-v1"
        assert payload["roots"][0]["name"] == "a"
        assert payload["roots"][0]["children"][0]["name"] == "b"
        text = render_trace(trace)
        assert "a" in text and "b" in text


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counters_gauges_histograms(self):
        inc("requests", method="x")
        inc("requests", 2, method="x")
        set_gauge("depth", 7.0)
        observe("latency", 0.5)
        observe("latency", 1.5)
        snap = metrics_snapshot()
        assert snap["counters"]["requests{method=x}"] == 3
        assert snap["gauges"]["depth"] == 7.0
        hist = snap["histograms"]["latency"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(2.0)
        assert hist["min"] == 0.5 and hist["max"] == 1.5

    def test_delta_and_merge_roundtrip(self):
        inc("jobs", 5)
        observe("wall", 1.0)
        base = metrics_baseline()
        inc("jobs", 3)
        observe("wall", 2.0)
        delta = metrics_delta(base)
        assert delta["counters"]["jobs"] == 3
        assert delta["histograms"]["wall"]["count"] == 1
        assert delta["histograms"]["wall"]["sum"] == pytest.approx(2.0)
        # merging the delta into a clean slate reproduces the new work
        clear_metrics()
        merge_snapshot(delta)
        snap = metrics_snapshot()
        assert snap["counters"]["jobs"] == 3
        assert snap["histograms"]["wall"]["count"] == 1

    def test_merge_tolerates_none_and_empty(self):
        merge_snapshot(None)
        merge_snapshot({})
        assert metrics_snapshot()["counters"] == {}


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------

class TestRecords:
    def test_sink_roundtrip_and_summary(self, tmp_path):
        sink = set_record_sink(tmp_path)
        assert sink.endswith("records.jsonl")
        record("execute", method="statevector", qubits=4,
               wall_seconds=0.25)
        record("execute", method="statevector", qubits=4,
               wall_seconds=0.75)
        record("batch", jobs=2, wall_seconds=1.0,
               faults={"retries": 1})
        set_record_sink(None)
        rows = list(iter_records(sink))
        assert [row["kind"] for row in rows] == [
            "execute", "execute", "batch"
        ]
        assert all("ts" in row for row in rows)
        summary = summarize_records(rows)
        assert summary["total_records"] == 3
        bucket = summary["methods"]["statevector/q4"]
        assert bucket["count"] == 2
        assert bucket["wall_seconds"] == pytest.approx(1.0)
        assert summary["batches"]["faults"] == {"retries": 1}

    def test_disabled_recording_is_a_noop(self, tmp_path):
        record("execute", method="x")
        assert list(iter_records(tmp_path / "missing.jsonl")) == []

    def test_iter_records_skips_torn_lines(self, tmp_path):
        path = tmp_path / "records.jsonl"
        good = json.dumps({"kind": "execute", "method": "sv"})
        path.write_text(good + "\n" + '{"kind": "exec' + "\n" +
                        good + "\n")
        rows = list(iter_records(path))
        assert len(rows) == 2

    def test_collect_records_buffers_instead_of_writing(self, tmp_path):
        sink = set_record_sink(tmp_path)
        with collect_records() as buffered:
            record("execute", method="sv")
        assert len(buffered) == 1
        # nothing hit the file while the buffer was active
        assert list(iter_records(sink)) == []


# ---------------------------------------------------------------------------
# byte-identity: telemetry is observation only
# ---------------------------------------------------------------------------

#: (method kwargs, circuit family) per back-end; 3 qubits keeps the
#: density-matrix cells cheap and every method in budget
_IDENTITY_CASES = {
    "density_matrix": (
        dict(method="density_matrix", with_noise=True), generic_circuit
    ),
    "statevector": (
        dict(method="statevector", with_noise=False), generic_circuit
    ),
    "trajectory": (
        dict(method="trajectory", with_noise=True, trajectories=8),
        generic_circuit,
    ),
    "stabilizer": (
        dict(method="stabilizer", with_noise=False), clifford_circuit
    ),
}


@pytest.mark.slow
@pytest.mark.parametrize("method", sorted(_IDENTITY_CASES))
class TestByteIdentity:
    def _run(self, backend, method, jobs, telemetry, tmp_path):
        kwargs, family = _IDENTITY_CASES[method]
        circuits = [family(3, seed) for seed in range(6)]
        if not telemetry:
            result = backend.run(
                circuits, shots=SHOTS, seed=7, jobs=jobs, **kwargs
            )
            return counts_of(result)
        set_record_sink(tmp_path / f"{method}-{jobs}")
        try:
            with collect_trace(method) as trace:
                result = backend.run(
                    circuits, shots=SHOTS, seed=7, jobs=jobs, **kwargs
                )
        finally:
            set_record_sink(None)
        # the traced run must actually have traced something
        assert trace.roots, "telemetry-on run collected no spans"
        return counts_of(result)

    def test_inline_counts_identical(self, backend, method, tmp_path):
        plain = self._run(backend, method, 1, False, tmp_path)
        traced = self._run(backend, method, 1, True, tmp_path)
        assert traced == plain

    def test_pooled_counts_identical(self, backend, method, tmp_path):
        inline = self._run(backend, method, 1, False, tmp_path)
        pooled_plain = self._run(backend, method, 4, False, tmp_path)
        pooled_traced = self._run(backend, method, 4, True, tmp_path)
        assert pooled_plain == inline
        assert pooled_traced == inline


# ---------------------------------------------------------------------------
# trace-tree shape
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestTraceShape:
    def test_pooled_dispatch_tree(self, backend, tmp_path):
        circuits = [generic_circuit(3, seed) for seed in range(8)]
        set_record_sink(tmp_path)
        try:
            with collect_trace("pooled") as trace:
                backend.run(circuits, shots=SHOTS, seed=3, jobs=4)
        finally:
            set_record_sink(None)
        (root,) = trace.roots
        assert root.name == "backend.run"
        (run_jobs,) = root.children
        assert run_jobs.name == "service.run_jobs"
        assert run_jobs.attributes["jobs"] == 8
        dispatches = [
            child for child in run_jobs.children
            if child.name == "shard.dispatch"
        ]
        # every dispatch span sits directly under service.run_jobs and
        # together they cover every job index exactly once
        assert dispatches == trace.find("shard.dispatch")
        indices = []
        for dispatch in dispatches:
            jobs = [
                s for s in dispatch.iter_spans() if s.name == "job.run"
            ]
            assert len(jobs) == dispatch.attributes["jobs"]
            indices.extend(s.attributes["index"] for s in jobs)
        assert sorted(indices) == list(range(8))
        # worker-side engine spans arrived under each job.run
        assert len(trace.find("engine.execute")) == 8
        # the record sink got one execute row per job plus the batch row
        rows = list(iter_records(tmp_path / "records.jsonl"))
        kinds = [row["kind"] for row in rows]
        assert kinds.count("execute") == 8
        assert kinds.count("batch") == 1

    def test_inline_retries_recorded_exactly_once(self, backend):
        jobs = [
            CircuitJob(circuit=generic_circuit(3, seed), shots=SHOTS,
                       seed=seed)
            for seed in range(4)
        ]
        policy = FaultPolicy(
            rules=(FaultRule("transient", max_attempts=1),)
        )
        with ExecutionService(
            backend, fault_policy=policy, retry_backoff=0.001
        ) as service:
            with collect_trace("faults") as trace:
                _, meta = service.run_jobs(jobs)
        faults = trace.find("service.fault")
        by_kind = {}
        for event in faults:
            kind = event.attributes["kind"]
            by_kind[kind] = by_kind.get(kind, 0) + 1
        # one transient error + one retry per job, each exactly once,
        # matching the service's own fault counters
        assert by_kind["transient_errors"] == len(jobs)
        assert by_kind["retries"] == meta["faults"]["retries"] == len(jobs)
        (run_jobs,) = trace.find("service.run_jobs")
        assert all(event in run_jobs.children for event in faults)

    def test_pooled_retries_converge_with_tracing(self, backend):
        circuits = [generic_circuit(3, seed) for seed in range(4)]
        jobs = [
            CircuitJob(circuit=circuit, shots=SHOTS, seed=index)
            for index, circuit in enumerate(circuits)
        ]
        policy = FaultPolicy(
            rules=(FaultRule("transient", max_attempts=1),)
        )
        with ExecutionService(
            backend, jobs=2, retry_backoff=0.001
        ) as clean_service:
            clean, _ = clean_service.run_jobs(jobs)
        with ExecutionService(
            backend, jobs=2, fault_policy=policy, retry_backoff=0.001
        ) as service:
            with collect_trace("pooled-faults") as trace:
                experiments, meta = service.run_jobs(jobs)
        assert [dict(e.counts) for e in experiments] == [
            dict(e.counts) for e in clean
        ]
        assert meta["faults"]["retries"] >= len(jobs)
        retry_events = [
            s for s in trace.find("service.fault")
            if s.attributes["kind"] == "retries"
        ]
        assert len(retry_events) == meta["faults"]["retries"]
        # the jobs that finally ran each appear exactly once at their
        # final attempt, under a dispatch span
        final_runs = trace.find("job.run")
        ran = sorted(s.attributes["index"] for s in final_runs)
        assert ran == list(range(len(jobs)))
        assert all(s.attributes["attempt"] >= 1 for s in final_runs)


# ---------------------------------------------------------------------------
# service/store metrics surface (satellite)
# ---------------------------------------------------------------------------

class TestServiceMetricsSurface:
    def test_store_counters_reach_snapshot(self, backend, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = CircuitJob(circuit=generic_circuit(3, 0), shots=SHOTS,
                         seed=9)
        with ExecutionService(backend, store=store) as service:
            service.run_jobs([job])
            service.run_jobs([job])
            stats = service.stats()
        assert stats["store_degraded"] is False
        counters = stats["metrics"]["counters"]
        assert counters["store.misses"] >= 1
        assert counters["store.puts"] >= 1
        assert counters["store.hits"] >= 1
        assert stats["store"]["errors"] == 0

    def test_degraded_store_is_visible(self, backend, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = CircuitJob(circuit=generic_circuit(3, 0), shots=SHOTS,
                         seed=9)

        def explode(key):
            raise OSError("disk on fire")

        store.get = explode  # degrade on first lookup
        with ExecutionService(backend, store=store) as service:
            experiments, _ = service.run_jobs([job])
            stats = service.stats()
        assert len(experiments) == 1
        assert stats["store_degraded"] is True
        assert stats["metrics"]["gauges"]["store.degraded"] == 1.0

    def test_stats_always_reports_degraded_flag(self, backend):
        with ExecutionService(backend) as service:
            stats = service.stats()
        assert stats["store_degraded"] is False
        assert "metrics" in stats


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------

def _synthetic_records(coeff_sv: float, coeff_dm: float, count: int = 12):
    """Execute records whose implied per-unit coefficients are exact."""
    rows = []
    for index in range(count):
        qubits = 3 + (index % 3)
        rows.append({
            "kind": "execute", "method": "statevector",
            "qubits": qubits, "wall_seconds": coeff_sv * 2 ** qubits,
        })
        rows.append({
            "kind": "execute", "method": "density_matrix",
            "qubits": qubits, "wall_seconds": coeff_dm * 4 ** qubits,
        })
    return rows


class TestCalibration:
    def test_fit_recovers_coefficients(self):
        calibration = fit_cost_calibration(
            _synthetic_records(2e-6, 3e-7), min_records=5
        )
        assert calibration.coefficients["statevector"] == (
            pytest.approx(2e-6)
        )
        assert calibration.coefficients["density_matrix"] == (
            pytest.approx(3e-7)
        )
        assert calibration.samples["statevector"] == 12

    def test_fit_needs_enough_records(self):
        calibration = fit_cost_calibration(
            _synthetic_records(1e-6, 1e-6, count=2), min_records=5
        )
        assert calibration.coefficients == {}
        assert use_calibrated_costs(calibration) == 0

    def test_roundtrip_through_disk(self, tmp_path):
        calibration = fit_cost_calibration(_synthetic_records(1e-6, 1e-7))
        path = tmp_path / "calibration.json"
        calibration.save(path)
        loaded = CostCalibration.load(path)
        assert loaded.coefficients == calibration.coefficients
        assert loaded.samples == calibration.samples

    def test_predicted_seconds_uses_unit_model(self):
        calibration = fit_cost_calibration(_synthetic_records(1e-6, 1e-7))
        assert calibration.predicted_seconds(
            "statevector", qubits=10
        ) == pytest.approx(1e-6 * 2 ** 10)
        assert calibration.predicted_seconds(
            "trajectory", qubits=4
        ) is None  # no trajectory records were fitted

    def test_reorders_rank_only_under_opt_in(self, backend):
        """From >= 20 records, calibration flips the density-matrix /
        statevector order for noiseless circuits — but only while the
        opt-in override is installed; default auto dispatch never
        moves."""
        circuit = generic_circuit(3, 0)
        resolve = lambda: select_method(
            circuit, backend.target, None, "auto"
        )
        assert resolve() == "statevector"
        # records where the statevector back-end is catastrophically
        # slow per amplitude and the density matrix is fast
        records = _synthetic_records(5e-2, 1e-9)
        assert len(records) >= 20
        calibration = fit_cost_calibration(records)
        # fitting alone changes nothing: still opt-in
        assert resolve() == "statevector"
        installed = use_calibrated_costs(calibration)
        assert installed >= 2
        try:
            assert resolve() == "density_matrix"
        finally:
            clear_calibrated_costs()
        assert resolve() == "statevector"

    def test_default_auto_dispatch_unaffected_by_fit(self, backend):
        noisy = generic_circuit(3, 1)
        before = select_method(
            noisy, backend.target, backend.noise_model, "auto"
        )
        fit_cost_calibration(_synthetic_records(5e-2, 1e-9))
        after = select_method(
            noisy, backend.target, backend.noise_model, "auto"
        )
        assert after == before


# ---------------------------------------------------------------------------
# logging etiquette (satellite)
# ---------------------------------------------------------------------------

class TestLogging:
    def test_repro_root_logger_has_only_a_nullhandler(self):
        import repro  # noqa: F401  (import installs the handler)

        root = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )
        assert all(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )

    def test_child_loggers_have_no_handlers_and_propagate(self):
        for name in ("repro.service", "repro.telemetry"):
            child = logging.getLogger(name)
            assert child.handlers == []
            assert child.propagate
