"""Unit tests for the circuit IR: parameters, gates, QuantumCircuit."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Parameter,
    ParameterExpression,
    QuantumCircuit,
    standard_gate,
)
from repro.circuits.gates import (
    Barrier,
    Delay,
    Measure,
    StandardGate,
    UnitaryGate,
    known_gate_names,
)
from repro.exceptions import CircuitError, ParameterError
from repro.utils.linalg import is_unitary


class TestParameter:
    def test_distinct_same_name(self):
        a1, a2 = Parameter("a"), Parameter("a")
        assert a1 != a2
        assert hash(a1) != hash(a2) or a1 is not a2

    def test_linear_arithmetic(self):
        a, b = Parameter("a"), Parameter("b")
        expr = 2 * a - b / 2 + 1.0
        assert expr.coefficient(a) == 2.0
        assert expr.coefficient(b) == -0.5
        assert expr.bind({a: 1.0, b: 2.0}) == pytest.approx(2.0)

    def test_partial_bind(self):
        a, b = Parameter("a"), Parameter("b")
        expr = a + b
        partial = expr.bind({a: 3.0})
        assert isinstance(partial, ParameterExpression)
        assert partial.parameters == frozenset({b})
        assert partial.bind({b: 1.0}) == pytest.approx(4.0)

    def test_nonlinear_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        with pytest.raises(ParameterError):
            _ = a * b

    def test_division_by_parameter_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        with pytest.raises(ParameterError):
            _ = a / b

    def test_negation_and_subtraction(self):
        a = Parameter("a")
        expr = -(a - 2)
        assert expr.bind({a: 5.0}) == pytest.approx(-3.0)

    def test_constant_expression(self):
        expr = ParameterExpression({}, 1.5)
        assert expr.is_constant
        assert expr.constant_value == 1.5

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            Parameter("")


class TestStandardGates:
    @pytest.mark.parametrize("name", sorted(known_gate_names()))
    def test_all_gates_unitary(self, name):
        from repro.circuits.gates import _PARAMETRIC_SIGNATURES

        if name in _PARAMETRIC_SIGNATURES:
            _, num_params = _PARAMETRIC_SIGNATURES[name]
            gate = standard_gate(name, [0.37] * num_params)
        else:
            gate = standard_gate(name)
        assert is_unitary(gate.matrix())

    @pytest.mark.parametrize("name", sorted(known_gate_names()))
    def test_inverse_is_adjoint(self, name):
        from repro.circuits.gates import _PARAMETRIC_SIGNATURES

        if name in _PARAMETRIC_SIGNATURES:
            _, num_params = _PARAMETRIC_SIGNATURES[name]
            gate = standard_gate(name, [0.81] * num_params)
        else:
            gate = standard_gate(name)
        inv = gate.inverse()
        np.testing.assert_allclose(
            inv.matrix() @ gate.matrix(), np.eye(gate.matrix().shape[0]),
            atol=1e-12,
        )

    def test_cx_matrix(self):
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]]
        )
        np.testing.assert_allclose(standard_gate("cx").matrix(), expected)

    def test_h_squared_identity(self):
        h = standard_gate("h").matrix()
        np.testing.assert_allclose(h @ h, np.eye(2), atol=1e-12)

    def test_sx_squared_is_x(self):
        sx = standard_gate("sx").matrix()
        np.testing.assert_allclose(
            sx @ sx, standard_gate("x").matrix(), atol=1e-12
        )

    def test_rz_vs_phase(self):
        theta = 0.6
        rz = standard_gate("rz", [theta]).matrix()
        p = standard_gate("p", [theta]).matrix()
        np.testing.assert_allclose(
            rz * np.exp(1j * theta / 2), p, atol=1e-12
        )

    def test_rzz_diagonal(self):
        theta = 1.1
        rzz = standard_gate("rzz", [theta]).matrix()
        expected = np.diag(
            np.exp(-1j * theta / 2 * np.array([1, -1, -1, 1]))
        )
        np.testing.assert_allclose(rzz, expected, atol=1e-12)

    def test_rzx_structure(self):
        # exp(-i th/2 Z0 X1): Z on first (LSB) qubit, X on second
        theta = 0.9
        rzx = standard_gate("rzx", [theta]).matrix()
        zx = np.kron(
            np.array([[0, 1], [1, 0]]), np.array([[1, 0], [0, -1]])
        ).astype(complex)
        from scipy.linalg import expm

        np.testing.assert_allclose(
            rzx, expm(-1j * theta / 2 * zx), atol=1e-12
        )

    def test_ecr_self_inverse(self):
        ecr = standard_gate("ecr").matrix()
        np.testing.assert_allclose(ecr @ ecr, np.eye(4), atol=1e-12)

    def test_u3_general(self):
        theta, phi, lam = 0.3, 0.7, -0.2
        u = standard_gate("u", [theta, phi, lam]).matrix()
        ry = standard_gate("ry", [theta]).matrix()
        rz_phi = standard_gate("rz", [phi]).matrix()
        rz_lam = standard_gate("rz", [lam]).matrix()
        expected = rz_phi @ ry @ rz_lam
        # u3 = e^{i(phi+lam)/2} RZ(phi) RY(theta) RZ(lam)
        phase = np.exp(1j * (phi + lam) / 2)
        np.testing.assert_allclose(u, phase * expected, atol=1e-12)

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            standard_gate("nope")

    def test_wrong_param_count(self):
        with pytest.raises(CircuitError):
            standard_gate("rx", [1.0, 2.0])
        with pytest.raises(CircuitError):
            standard_gate("h", [1.0])

    def test_symbolic_gate_matrix_raises(self):
        theta = Parameter("t")
        gate = standard_gate("rx", [theta])
        assert gate.is_parameterized
        with pytest.raises(CircuitError):
            gate.matrix()

    def test_unitary_gate(self):
        mat = standard_gate("h").matrix()
        gate = UnitaryGate(mat, label="had")
        assert gate.num_qubits == 1
        np.testing.assert_allclose(gate.matrix(), mat)
        with pytest.raises(CircuitError):
            UnitaryGate(np.ones((2, 3)))


class TestQuantumCircuit:
    def test_build_and_count(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2)
        assert len(qc) == 4
        assert qc.count_ops() == {"cx": 2, "h": 1, "rz": 1}
        assert qc.size() == 4
        assert qc.num_two_qubit_gates() == 2

    def test_depth(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        assert qc.depth() == 1
        qc.cx(0, 1)
        assert qc.depth() == 2
        qc.barrier()
        assert qc.depth() == 2  # barrier free

    def test_qubit_range_check(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.h(2)
        with pytest.raises(CircuitError):
            qc.cx(0, 0)

    def test_measure_all(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.measure_all()
        assert qc.num_clbits == 3
        assert qc.has_measurements()
        ops = qc.count_ops()
        assert ops["measure"] == 3

    def test_parameters_sorted(self):
        beta = Parameter("beta")
        gamma = Parameter("gamma")
        qc = QuantumCircuit(2)
        qc.rzz(gamma, 0, 1)
        qc.rx(beta, 0)
        qc.rx(beta, 1)
        assert [p.name for p in qc.parameters] == ["beta", "gamma"]
        assert qc.num_parameters == 2

    def test_assign_parameters_mapping_and_sequence(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rx(theta, 0)
        bound_map = qc.assign_parameters({theta: 0.5})
        bound_seq = qc.assign_parameters([0.5])
        assert bound_map.instructions[0].operation.params[0] == 0.5
        assert bound_seq.instructions[0].operation.params[0] == 0.5
        # original untouched
        assert qc.instructions[0].operation.is_parameterized

    def test_assign_wrong_length(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rx(theta, 0)
        with pytest.raises(ParameterError):
            qc.assign_parameters([0.1, 0.2])

    def test_expression_binding(self):
        gamma = Parameter("gamma")
        qc = QuantumCircuit(2)
        qc.rz(2 * gamma, 0)
        bound = qc.assign_parameters({gamma: 0.25})
        assert bound.instructions[0].operation.params[0] == pytest.approx(0.5)

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(3)
        outer.h(0)
        combined = outer.compose(inner, qubits=[1, 2])
        assert combined.instructions[1].qubits == (1, 2)

    def test_compose_size_check(self):
        small = QuantumCircuit(1)
        big = QuantumCircuit(2)
        big.cx(0, 1)
        with pytest.raises(CircuitError):
            small.compose(big)

    def test_inverse_roundtrip(self):
        from repro.simulators import circuit_to_unitary

        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).rz(0.3, 1).sx(0)
        identity = qc.compose(qc.inverse())
        u = circuit_to_unitary(identity)
        np.testing.assert_allclose(u, np.eye(4), atol=1e-12)

    def test_inverse_with_measure_raises(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(CircuitError):
            qc.inverse()

    def test_remove_final_measurements(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.measure_all()
        clean = qc.remove_final_measurements()
        assert not clean.has_measurements()
        assert clean.count_ops() == {"h": 1}

    def test_copy_independent(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        clone = qc.copy()
        clone.x(0)
        assert len(qc) == 1
        assert len(clone) == 2

    def test_power(self):
        qc = QuantumCircuit(1)
        qc.rx(0.5, 0)
        from repro.simulators import circuit_to_unitary

        cubed = qc.power(3)
        np.testing.assert_allclose(
            circuit_to_unitary(cubed),
            circuit_to_unitary(QuantumCircuit(1).rx(1.5, 0)),
            atol=1e-12,
        )

    def test_draw_smoke(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        text = qc.draw()
        assert "q0" in text and "q1" in text and "h" in text

    def test_delay_and_barrier(self):
        qc = QuantumCircuit(2)
        qc.delay(160, 0)
        qc.barrier(0, 1)
        assert qc.instructions[0].operation.duration == 160
        assert isinstance(qc.instructions[1].operation, Barrier)

    def test_calibrations(self):
        qc = QuantumCircuit(1)
        qc.add_calibration("x", [0], "fake-schedule")
        assert qc.calibrations[("x", (0,))] == "fake-schedule"


class TestCircuitProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.sampled_from(["h", "x", "s", "t"]), max_size=12))
    def test_inverse_involution_property(self, names):
        qc = QuantumCircuit(1)
        for name in names:
            qc.append(standard_gate(name), [0])
        double_inverse = qc.inverse().inverse()
        from repro.simulators import circuit_to_unitary

        np.testing.assert_allclose(
            circuit_to_unitary(double_inverse),
            circuit_to_unitary(qc),
            atol=1e-12,
        )

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["rx", "ry", "rz"]),
                st.floats(-3.0, 3.0, allow_nan=False),
            ),
            max_size=8,
        )
    )
    def test_depth_le_size(self, ops):
        qc = QuantumCircuit(2)
        for name, angle in ops:
            qc.append(standard_gate(name, [angle]), [0])
        assert qc.depth() <= qc.size()
