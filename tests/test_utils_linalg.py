"""Unit tests for repro.utils.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.linalg import (
    apply_matrix_to_qubits,
    close_to_identity,
    embed_matrix,
    is_hermitian,
    is_unitary,
    kron_all,
    partial_trace,
    process_fidelity,
    projector,
    state_fidelity,
    tensor_eye,
)

X = np.array([[0, 1], [1, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
CX = np.array(
    [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
)


def random_state(num_qubits, seed):
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=1 << num_qubits) + 1j * rng.normal(
        size=1 << num_qubits
    )
    return vec / np.linalg.norm(vec)


def random_unitary(dim, seed):
    rng = np.random.default_rng(seed)
    mat = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, _ = np.linalg.qr(mat)
    return q


class TestKron:
    def test_kron_all_single(self):
        np.testing.assert_allclose(kron_all([X]), X)

    def test_kron_all_order(self):
        # last entry acts on qubit 0
        out = kron_all([Z, X])
        expected = np.kron(Z, X)
        np.testing.assert_allclose(out, expected)

    def test_kron_all_empty_raises(self):
        with pytest.raises(ValueError):
            kron_all([])

    def test_tensor_eye(self):
        np.testing.assert_allclose(tensor_eye(3), np.eye(8))


class TestEmbed:
    def test_embed_single_qubit_lsb(self):
        # X on qubit 0 of 2 -> I ⊗ X (little-endian: kron(I, X))
        out = embed_matrix(X, [0], 2)
        np.testing.assert_allclose(out, np.kron(np.eye(2), X))

    def test_embed_single_qubit_msb(self):
        out = embed_matrix(X, [1], 2)
        np.testing.assert_allclose(out, np.kron(X, np.eye(2)))

    def test_embed_two_qubit_ordered(self):
        out = embed_matrix(CX, [0, 1], 2)
        np.testing.assert_allclose(out, CX)

    def test_embed_two_qubit_swapped(self):
        # CX with control=1, target=0
        out = embed_matrix(CX, [1, 0], 2)
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
        np.testing.assert_allclose(out, expected)

    def test_embed_bad_shape(self):
        with pytest.raises(ValueError):
            embed_matrix(X, [0, 1], 2)

    def test_embed_duplicate_qubits(self):
        with pytest.raises(ValueError):
            embed_matrix(CX, [0, 0], 2)

    def test_embed_out_of_range(self):
        with pytest.raises(ValueError):
            embed_matrix(X, [3], 2)


class TestApply:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_embed_single(self, num_qubits, seed):
        state = random_state(num_qubits, seed)
        for q in range(num_qubits):
            via_apply = apply_matrix_to_qubits(H, state, [q], num_qubits)
            via_embed = embed_matrix(H, [q], num_qubits) @ state
            np.testing.assert_allclose(via_apply, via_embed, atol=1e-12)

    @pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2)])
    def test_matches_embed_two_qubit(self, qubits):
        state = random_state(3, 42)
        u = random_unitary(4, 7)
        via_apply = apply_matrix_to_qubits(u, state, qubits, 3)
        via_embed = embed_matrix(u, qubits, 3) @ state
        np.testing.assert_allclose(via_apply, via_embed, atol=1e-12)

    def test_three_qubit_matrix(self):
        state = random_state(4, 3)
        u = random_unitary(8, 9)
        qubits = (2, 0, 3)
        via_apply = apply_matrix_to_qubits(u, state, qubits, 4)
        via_embed = embed_matrix(u, qubits, 4) @ state
        np.testing.assert_allclose(via_apply, via_embed, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        qubit=st.integers(0, 3),
    )
    def test_norm_preserved_property(self, seed, qubit):
        state = random_state(4, seed)
        u = random_unitary(2, seed + 1)
        out = apply_matrix_to_qubits(u, state, [qubit], 4)
        assert np.isclose(np.linalg.norm(out), 1.0)


class TestPartialTrace:
    def test_product_state(self):
        plus = np.array([1, 1], dtype=complex) / np.sqrt(2)
        zero = np.array([1, 0], dtype=complex)
        state = np.kron(zero, plus)  # qubit0=plus, qubit1=zero
        rho = np.outer(state, state.conj())
        reduced = partial_trace(rho, [0], 2)
        np.testing.assert_allclose(
            reduced, np.outer(plus, plus.conj()), atol=1e-12
        )
        reduced1 = partial_trace(rho, [1], 2)
        np.testing.assert_allclose(
            reduced1, np.outer(zero, zero.conj()), atol=1e-12
        )

    def test_bell_state_maximally_mixed(self):
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 1 / np.sqrt(2)
        rho = np.outer(bell, bell.conj())
        for keep in ([0], [1]):
            reduced = partial_trace(rho, keep, 2)
            np.testing.assert_allclose(reduced, np.eye(2) / 2, atol=1e-12)

    def test_keep_order(self):
        state = random_state(3, 5)
        rho = np.outer(state, state.conj())
        r01 = partial_trace(rho, [0, 1], 3)
        r10 = partial_trace(rho, [1, 0], 3)
        # swapping the kept qubits permutes basis indices 1 and 2
        perm = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
        )
        np.testing.assert_allclose(r10, perm @ r01 @ perm.T, atol=1e-12)

    def test_trace_preserved(self):
        state = random_state(4, 8)
        rho = np.outer(state, state.conj())
        reduced = partial_trace(rho, [1, 3], 4)
        assert np.isclose(np.trace(reduced).real, 1.0)

    def test_keep_all_is_identity_map(self):
        state = random_state(2, 11)
        rho = np.outer(state, state.conj())
        np.testing.assert_allclose(
            partial_trace(rho, [0, 1], 2), rho, atol=1e-12
        )

    def test_bad_args(self):
        rho = np.eye(4) / 4
        with pytest.raises(ValueError):
            partial_trace(rho, [0, 0], 2)
        with pytest.raises(ValueError):
            partial_trace(rho, [5], 2)
        with pytest.raises(ValueError):
            partial_trace(np.eye(3), [0], 2)


class TestPredicates:
    def test_is_unitary(self):
        assert is_unitary(H)
        assert is_unitary(CX)
        assert not is_unitary(np.array([[1, 1], [0, 1]]))
        assert not is_unitary(np.ones((2, 3)))

    def test_is_hermitian(self):
        assert is_hermitian(X)
        assert is_hermitian(Z)
        assert not is_hermitian(1j * X)

    def test_close_to_identity_phase(self):
        assert close_to_identity(np.exp(0.3j) * np.eye(4))
        assert not close_to_identity(CX)
        assert not close_to_identity(Z)  # traceless


class TestFidelities:
    def test_state_fidelity_pure(self):
        a = random_state(2, 1)
        assert np.isclose(state_fidelity(a, a), 1.0)
        b = np.zeros(4, dtype=complex)
        b[0] = 1
        c = np.zeros(4, dtype=complex)
        c[1] = 1
        assert np.isclose(state_fidelity(b, c), 0.0)

    def test_state_fidelity_mixed(self):
        a = random_state(1, 2)
        rho = np.eye(2) / 2
        assert np.isclose(state_fidelity(a, rho), 0.5)
        assert np.isclose(state_fidelity(rho, a), 0.5)

    def test_process_fidelity(self):
        u = random_unitary(4, 4)
        assert np.isclose(process_fidelity(u, u), 1.0)
        assert np.isclose(
            process_fidelity(u, np.exp(0.7j) * u), 1.0
        )
        assert process_fidelity(np.eye(4), CX) < 1.0

    def test_projector(self):
        p = projector(2, 4)
        assert p[2, 2] == 1
        assert np.trace(p) == 1
