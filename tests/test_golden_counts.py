"""Golden-counts regression fixtures, one per simulation method.

``tests/fixtures/golden_counts.json`` pins the exact seeded counts each
back-end produced when the fixture was generated.  Refactors of the
engine, the kernels or the RNG derivation **cannot** silently shift
seeded outputs: any change to these counts fails here and forces an
explicit, reviewed fixture update.

Regenerate (only when an output change is intended) with::

    PYTHONPATH=src python tests/test_golden_counts.py --regenerate
"""

import json
from pathlib import Path

import pytest

from repro.backends import FakeGuadalupe, execute_circuit
from repro.circuits import QuantumCircuit
from repro.noise import NoiseModel, ReadoutError

FIXTURE = Path(__file__).parent / "fixtures" / "golden_counts.json"

SHOTS = 512
SEED = 11


def golden_circuit(num_qubits: int = 4) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    qc.h(0)
    for i in range(num_qubits - 1):
        qc.cx(i, i + 1)
    qc.rz(0.37, 1)
    qc.sx(2)
    for i in range(num_qubits):
        qc.measure(i, i)
    return qc


def clifford_golden_circuit(num_qubits: int = 4) -> QuantumCircuit:
    """The golden circuit's Clifford sibling (rz(0.37) -> s)."""
    qc = QuantumCircuit(num_qubits, num_qubits)
    qc.h(0)
    for i in range(num_qubits - 1):
        qc.cx(i, i + 1)
    qc.s(1)
    qc.sx(2)
    for i in range(num_qubits):
        qc.measure(i, i)
    return qc


def golden_pauli_noise(num_qubits: int) -> NoiseModel:
    """Pauli-mixture noise the stabilizer method simulates exactly."""
    noise = NoiseModel(num_qubits)
    noise.add_depolarizing_error("cx", 0.02, 2)
    for name in ("h", "s", "sx"):
        noise.add_depolarizing_error(name, 0.002, 1)
    noise.set_readout_error(ReadoutError.uniform(num_qubits, 0.02))
    return noise


def run_case(backend, case: str):
    """Execute one named golden case; returns the ExperimentResult."""
    circuit = golden_circuit()
    if case == "stabilizer_noiseless":
        return execute_circuit(
            clifford_golden_circuit(), backend.target, None,
            shots=SHOTS, seed=SEED, method="stabilizer",
        )
    if case == "stabilizer_pauli":
        return execute_circuit(
            clifford_golden_circuit(), backend.target,
            golden_pauli_noise(backend.num_qubits),
            shots=SHOTS, seed=SEED, method="stabilizer",
        )
    if case == "stabilizer_pauli_batch7":
        # the packed kernel's RNG-order invariant: any batch size must
        # reproduce the sequential per-shot stream byte-for-byte
        return execute_circuit(
            clifford_golden_circuit(), backend.target,
            golden_pauli_noise(backend.num_qubits),
            shots=SHOTS, seed=SEED, method="stabilizer",
            stabilizer_shot_batch=7,
        )
    if case == "statevector_noiseless":
        return execute_circuit(
            circuit, backend.target, None, shots=SHOTS, seed=SEED,
            method="statevector",
        )
    if case == "density_matrix_noisy":
        return execute_circuit(
            circuit, backend.target, backend.noise_model,
            shots=SHOTS, seed=SEED, method="density_matrix",
        )
    if case == "trajectory_fixed":
        return execute_circuit(
            circuit, backend.target, backend.noise_model,
            shots=SHOTS, seed=SEED, method="trajectory", trajectories=8,
        )
    if case == "trajectory_adaptive":
        return execute_circuit(
            circuit, backend.target, backend.noise_model,
            shots=1024, seed=SEED, method="trajectory",
            trajectories="auto", target_error=0.05,
        )
    raise ValueError(case)


CASES = [
    "statevector_noiseless",
    "density_matrix_noisy",
    "trajectory_fixed",
    "trajectory_adaptive",
    "stabilizer_noiseless",
    "stabilizer_pauli",
    "stabilizer_pauli_batch7",
]


@pytest.fixture(scope="module")
def backend():
    return FakeGuadalupe()


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("case", CASES)
def test_counts_match_golden_fixture(backend, golden, case):
    result = run_case(backend, case)
    entry = golden[case]
    assert dict(result.counts) == entry["counts"], (
        f"seeded counts for {case!r} shifted; if the change is "
        f"intended, regenerate tests/fixtures/golden_counts.json"
    )
    assert result.metadata["method"] == entry["method"]
    if "trajectories" in entry:
        assert result.metadata["trajectories"] == entry["trajectories"]


def test_trajectory_sequential_matches_batched_golden(backend, golden):
    """The sequential reference path reproduces the batched fixture."""
    circuit = golden_circuit()
    sequential = execute_circuit(
        circuit, backend.target, backend.noise_model,
        shots=SHOTS, seed=SEED, method="trajectory", trajectories=8,
        trajectory_batch=1,
    )
    assert dict(sequential.counts) == golden["trajectory_fixed"]["counts"]


def test_stabilizer_sequential_matches_batched_golden(backend, golden):
    """``stabilizer_shot_batch`` never perturbs seeded counts.

    The sequential reference (batch=1) reproduces the golden pauli
    fixture, and the batch=7 fixture entry is the *same* counts — the
    packed kernel consumes the per-shot RNG stream in the historical
    order whatever the batch size.
    """
    sequential = execute_circuit(
        clifford_golden_circuit(), backend.target,
        golden_pauli_noise(backend.num_qubits),
        shots=SHOTS, seed=SEED, method="stabilizer",
        stabilizer_shot_batch=1,
    )
    assert dict(sequential.counts) == golden["stabilizer_pauli"]["counts"]
    assert (
        golden["stabilizer_pauli_batch7"]["counts"]
        == golden["stabilizer_pauli"]["counts"]
    )


def test_stabilizer_noiseless_golden_is_statevector_identical(
    backend, golden
):
    """The tableau's deterministic path shares the exact sampling step,
    so its noiseless golden counts ARE the statevector counts."""
    statevector = execute_circuit(
        clifford_golden_circuit(), backend.target, None,
        shots=SHOTS, seed=SEED, method="statevector",
    )
    assert (
        dict(statevector.counts)
        == golden["stabilizer_noiseless"]["counts"]
    )


def regenerate() -> None:
    backend = FakeGuadalupe()
    payload = {}
    for case in CASES:
        result = run_case(backend, case)
        entry = {
            "counts": dict(result.counts),
            "method": result.metadata["method"],
        }
        if "trajectories" in result.metadata:
            entry["trajectories"] = result.metadata["trajectories"]
        payload[case] = entry
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
