"""Golden-counts regression fixtures, one per simulation method.

``tests/fixtures/golden_counts.json`` pins the exact seeded counts each
back-end produced when the fixture was generated.  Refactors of the
engine, the kernels or the RNG derivation **cannot** silently shift
seeded outputs: any change to these counts fails here and forces an
explicit, reviewed fixture update.

Regenerate (only when an output change is intended) with::

    PYTHONPATH=src python tests/test_golden_counts.py --regenerate
"""

import json
from pathlib import Path

import pytest

from repro.backends import FakeGuadalupe, execute_circuit
from repro.circuits import QuantumCircuit

FIXTURE = Path(__file__).parent / "fixtures" / "golden_counts.json"

SHOTS = 512
SEED = 11


def golden_circuit(num_qubits: int = 4) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    qc.h(0)
    for i in range(num_qubits - 1):
        qc.cx(i, i + 1)
    qc.rz(0.37, 1)
    qc.sx(2)
    for i in range(num_qubits):
        qc.measure(i, i)
    return qc


def run_case(backend, case: str):
    """Execute one named golden case; returns the ExperimentResult."""
    circuit = golden_circuit()
    if case == "statevector_noiseless":
        return execute_circuit(
            circuit, backend.target, None, shots=SHOTS, seed=SEED,
            method="statevector",
        )
    if case == "density_matrix_noisy":
        return execute_circuit(
            circuit, backend.target, backend.noise_model,
            shots=SHOTS, seed=SEED, method="density_matrix",
        )
    if case == "trajectory_fixed":
        return execute_circuit(
            circuit, backend.target, backend.noise_model,
            shots=SHOTS, seed=SEED, method="trajectory", trajectories=8,
        )
    if case == "trajectory_adaptive":
        return execute_circuit(
            circuit, backend.target, backend.noise_model,
            shots=1024, seed=SEED, method="trajectory",
            trajectories="auto", target_error=0.05,
        )
    raise ValueError(case)


CASES = [
    "statevector_noiseless",
    "density_matrix_noisy",
    "trajectory_fixed",
    "trajectory_adaptive",
]


@pytest.fixture(scope="module")
def backend():
    return FakeGuadalupe()


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("case", CASES)
def test_counts_match_golden_fixture(backend, golden, case):
    result = run_case(backend, case)
    entry = golden[case]
    assert dict(result.counts) == entry["counts"], (
        f"seeded counts for {case!r} shifted; if the change is "
        f"intended, regenerate tests/fixtures/golden_counts.json"
    )
    assert result.metadata["method"] == entry["method"]
    if "trajectories" in entry:
        assert result.metadata["trajectories"] == entry["trajectories"]


def test_trajectory_sequential_matches_batched_golden(backend, golden):
    """The sequential reference path reproduces the batched fixture."""
    circuit = golden_circuit()
    sequential = execute_circuit(
        circuit, backend.target, backend.noise_model,
        shots=SHOTS, seed=SEED, method="trajectory", trajectories=8,
        trajectory_batch=1,
    )
    assert dict(sequential.counts) == golden["trajectory_fixed"]["counts"]


def regenerate() -> None:
    backend = FakeGuadalupe()
    payload = {}
    for case in CASES:
        result = run_case(backend, case)
        entry = {
            "counts": dict(result.counts),
            "method": result.metadata["method"],
        }
        if "trajectories" in result.metadata:
            entry["trajectories"] = result.metadata["trajectories"]
        payload[case] = entry
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
