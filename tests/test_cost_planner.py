"""Cost-aware shard planning: estimator, weighted planner, service wiring.

The contract under test (SERVICE.md "Scheduling"): the cost planner may
change how jobs group into shards and the order shards dispatch, but
never which jobs run, how many times, or what they return — byte
identity between ``shard_planner="cost"``, ``shard_planner="count"`` and
``jobs=1`` is asserted, not assumed.
"""

import json
import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import FakeGuadalupe
from repro.circuits import QuantumCircuit
from repro.exceptions import BackendError
from repro.service import CircuitJob, ExecutionService, plan_shards
from repro.service.jobs import job_shape
from repro.service.scheduler import (
    estimate_job_seconds,
    plan_shards_weighted,
)
from repro.telemetry import (
    CostCalibration,
    refresh_cost_calibration,
)

SHOTS = 64


@pytest.fixture(scope="module")
def backend():
    return FakeGuadalupe()


def ghz(qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(qubits, name=f"ghz{qubits}")
    circuit.h(0)
    for qubit in range(qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.measure_all()
    return circuit


def mixed_jobs(base_seed: int = 11) -> list[CircuitJob]:
    """A heterogeneous batch: cheap stabilizer + expensive density jobs."""
    jobs = []
    for index in range(6):
        if index % 2:
            jobs.append(
                CircuitJob(
                    circuit=ghz(3),
                    shots=SHOTS,
                    seed=base_seed + index,
                    method="stabilizer",
                    with_noise=False,
                )
            )
        else:
            jobs.append(
                CircuitJob(
                    circuit=ghz(3),
                    shots=SHOTS,
                    seed=base_seed + index,
                    method="density_matrix",
                )
            )
    return jobs


# ---------------------------------------------------------------------------
# plan_shards edge cases (count-based planner)
# ---------------------------------------------------------------------------

class TestPlanShardsEdges:
    def test_more_workers_than_jobs(self):
        shards = plan_shards(3, 8)
        assert [idx for shard in shards for idx in shard] == [0, 1, 2]
        assert len(shards) == 3  # never more shards than jobs

    def test_single_job(self):
        assert plan_shards(1, 4) == [[0]]
        assert plan_shards(1, 1, shards_per_worker=16) == [[0]]

    def test_min_shard_size_caps_oversubscription(self):
        # 12 jobs / min size 4 allows at most 3 shards even though the
        # oversubscription target asks for 8
        shards = plan_shards(12, 2, shards_per_worker=4, min_shard_size=4)
        assert len(shards) == 3
        assert all(len(shard) >= 4 for shard in shards)

    def test_worker_floor_beats_min_shard_size(self):
        # the one-shard-per-worker floor wins over min_shard_size: every
        # worker gets work even if shards run small
        shards = plan_shards(10, 8, shards_per_worker=1, min_shard_size=10)
        assert len(shards) == 8
        assert [idx for shard in shards for idx in shard] == list(range(10))


# ---------------------------------------------------------------------------
# weighted planner
# ---------------------------------------------------------------------------

class TestPlanShardsWeighted:
    def test_flat_weights_match_count_planner(self):
        assert plan_shards_weighted([2.5] * 10, 3) == plan_shards(10, 3)

    def test_unusable_weights_fall_back(self):
        for weights in (
            [float("nan"), 1.0, 1.0, 1.0],
            [float("inf"), 1.0, 1.0, 1.0],
            [-1.0, 2.0, 3.0, 4.0],
            [0.0, 0.0, 0.0, 0.0],
        ):
            assert plan_shards_weighted(weights, 2) == plan_shards(4, 2)

    def test_heavy_job_isolated_and_dispatched_first(self):
        weights = [1.0] * 7 + [100.0]
        shards = plan_shards_weighted(weights, 2, shards_per_worker=2)
        # the dominant job ends up alone in the first-dispatched shard
        assert shards[0] == [7]
        assert sorted(idx for shard in shards for idx in shard) == list(
            range(8)
        )

    def test_lpt_order_heaviest_first(self):
        weights = [1.0, 1.0, 5.0, 5.0, 20.0, 1.0, 1.0, 1.0]
        shards = plan_shards_weighted(weights, 2, shards_per_worker=2)
        totals = [sum(weights[idx] for idx in shard) for shard in shards]
        assert totals == sorted(totals, reverse=True)

    def test_empty_and_validation(self):
        assert plan_shards_weighted([], 2) == []
        with pytest.raises(BackendError):
            plan_shards_weighted([1.0], 0)
        with pytest.raises(BackendError):
            plan_shards_weighted([1.0], 1, min_shard_size=0)

    def test_min_shard_size_respected_when_feasible(self):
        weights = [1.0, 1.0, 1.0, 10.0, 1.0, 1.0, 1.0, 1.0]
        shards = plan_shards_weighted(
            weights, 2, shards_per_worker=2, min_shard_size=2
        )
        assert sorted(idx for shard in shards for idx in shard) == list(
            range(8)
        )
        assert all(len(shard) >= 2 for shard in shards)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=60,
        ),
        st.integers(1, 8),
        st.integers(1, 6),
        st.integers(1, 8),
    )
    def test_property_exact_contiguous_cover(
        self, weights, workers, shards_per_worker, min_shard_size
    ):
        """Every index appears exactly once and every shard is one
        contiguous ascending run — whatever the weights look like."""
        shards = plan_shards_weighted(
            weights,
            workers,
            shards_per_worker=shards_per_worker,
            min_shard_size=min_shard_size,
        )
        flat = sorted(idx for shard in shards for idx in shard)
        assert flat == list(range(len(weights)))
        for shard in shards:
            assert shard == list(range(shard[0], shard[-1] + 1))
        assert len(shards) <= len(weights)


# ---------------------------------------------------------------------------
# per-job cost estimation
# ---------------------------------------------------------------------------

class TestEstimateJobSeconds:
    def job(self, **overrides) -> CircuitJob:
        spec = dict(circuit=ghz(3), shots=SHOTS, seed=1)
        spec.update(overrides)
        return CircuitJob(**spec)

    def test_shape_resolution(self):
        job = self.job()
        assert job_shape(job, "density_matrix") == (
            "density_matrix",
            3,
            SHOTS,
            0,
        )
        method, qubits, shots, trajectories = job_shape(job, "trajectory")
        assert (method, qubits, shots) == ("trajectory", 3, SHOTS)
        assert trajectories > 0

    def test_slice_shape_counts_slice_width(self):
        job = self.job(
            method="trajectory",
            trajectories=64,
            trajectory_slice=(16, 48),
        )
        assert job_shape(job, "trajectory")[3] == 32

    def test_uncalibrated_ranks_like_shipped_costs(self):
        job = self.job()
        dm = estimate_job_seconds(job, "density_matrix")
        sv = estimate_job_seconds(job, "statevector")
        stab = estimate_job_seconds(job, "stabilizer")
        assert dm == pytest.approx(4.0**3)
        assert sv == pytest.approx(2.0**3)
        # the shipped stabilizer constant prices per-shot Clifford work
        # high at tiny qubit counts, exactly like registry "auto" costs
        assert stab == pytest.approx(SHOTS * 9 * 128.0)

    def test_calibration_scales_to_seconds(self):
        calibration = CostCalibration(
            coefficients={"density_matrix": 0.5}, samples={}
        )
        job = self.job()
        assert estimate_job_seconds(
            job, "density_matrix", calibration
        ) == pytest.approx(0.5 * 4.0**3)
        # unfitted method under the same calibration: shipped weight
        assert estimate_job_seconds(
            job, "statevector", calibration
        ) == pytest.approx(2.0**3)

    def test_unknown_method_is_unpriceable(self):
        assert estimate_job_seconds(self.job(), "no-such-method") is None


# ---------------------------------------------------------------------------
# calibration auto-refresh
# ---------------------------------------------------------------------------

class TestCalibrationRefresh:
    def write_records(self, path, count=6, ts=None, wall=0.5):
        ts = time.time() if ts is None else ts
        with open(path, "w", encoding="utf-8") as handle:
            for index in range(count):
                handle.write(
                    json.dumps(
                        {
                            "kind": "execute",
                            "ts": ts,
                            "method": "density_matrix",
                            "qubits": 3,
                            "shots": SHOTS,
                            "trajectories": 0,
                            "wall_seconds": wall,
                        }
                    )
                    + "\n"
                )

    def test_refresh_fits_fresh_records(self, tmp_path):
        sink = tmp_path / "records.jsonl"
        self.write_records(sink)
        calibration = refresh_cost_calibration(sink)
        assert calibration is not None
        assert calibration.coefficients["density_matrix"] == pytest.approx(
            0.5 / 4.0**3
        )

    def test_refresh_age_window_drops_stale_records(self, tmp_path):
        sink = tmp_path / "records.jsonl"
        self.write_records(sink, ts=time.time() - 3600.0)
        assert refresh_cost_calibration(sink, max_age=60.0) is None
        stale_ok = refresh_cost_calibration(sink, max_age=None)
        assert stale_ok is not None

    def test_refresh_fails_soft(self, tmp_path):
        assert refresh_cost_calibration(tmp_path / "missing.jsonl") is None
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("not json at all\n{torn")
        assert refresh_cost_calibration(corrupt) is None

    def test_refresh_honors_min_records(self, tmp_path):
        sink = tmp_path / "records.jsonl"
        self.write_records(sink, count=3)
        assert refresh_cost_calibration(sink, min_records=5) is None
        assert refresh_cost_calibration(sink, min_records=3) is not None


# ---------------------------------------------------------------------------
# service wiring
# ---------------------------------------------------------------------------

class TestServicePlannerWiring:
    def test_knob_validation(self, backend):
        with pytest.raises(BackendError):
            ExecutionService(backend, shard_planner="fastest")

    def test_stats_expose_planner_and_calibration(self, backend):
        service = ExecutionService(backend)
        stats = service.stats()
        assert stats["shard_planner"] == "cost"
        assert stats["calibration"] is None
        service.shutdown()

    def test_inline_meta_reports_inline_planner(self, backend):
        service = ExecutionService(backend, jobs=1)
        _, meta = service.run_jobs(mixed_jobs())
        assert meta["scheduler"]["planner"] == "inline"
        service.shutdown()

    @pytest.mark.slow
    def test_cost_and_count_plans_are_byte_identical(self, backend):
        jobs = mixed_jobs()
        with ExecutionService(backend, jobs=2) as cost_service:
            cost_results, cost_meta = cost_service.run_jobs(jobs)
        with ExecutionService(
            backend, jobs=2, shard_planner="count"
        ) as count_service:
            count_results, count_meta = count_service.run_jobs(jobs)
        with ExecutionService(backend, jobs=1) as inline_service:
            inline_results, _ = inline_service.run_jobs(jobs)
        assert cost_meta["scheduler"]["planner"] == "cost"
        assert count_meta["scheduler"]["planner"] == "count"
        assert "predicted_shard_seconds" in cost_meta["scheduler"]
        assert cost_meta["scheduler"]["shard_imbalance"] >= 1.0
        for cost_exp, count_exp, inline_exp in zip(
            cost_results, count_results, inline_results
        ):
            assert (
                pickle.dumps(cost_exp)
                == pickle.dumps(count_exp)
                == pickle.dumps(inline_exp)
            )

    @pytest.mark.slow
    def test_calibration_used_only_when_it_covers_all_methods(
        self, backend
    ):
        jobs = mixed_jobs()
        with ExecutionService(backend, jobs=2) as service:
            # covers only one of the two methods in the batch: weights
            # would mix seconds with unitless work, so it must be ignored
            service.calibration = CostCalibration(
                coefficients={"density_matrix": 1e-6}, samples={}
            )
            _, partial_meta = service.run_jobs(mixed_jobs(base_seed=50))
            service.calibration = CostCalibration(
                coefficients={
                    "density_matrix": 1e-6,
                    "stabilizer": 1e-8,
                },
                samples={},
            )
            _, full_meta = service.run_jobs(mixed_jobs(base_seed=90))
        assert partial_meta["scheduler"]["calibrated"] is False
        assert full_meta["scheduler"]["calibrated"] is True

    @pytest.mark.slow
    def test_queue_wait_metric_recorded(self, backend):
        with ExecutionService(backend, jobs=2) as service:
            service.run_jobs(mixed_jobs())
            metrics = service.stats()["metrics"]
        histograms = metrics["histograms"]
        assert any(
            "service.queue_wait_seconds" in str(key)
            for key in histograms
        )
        assert not any(
            "shard_queue_wait" in str(key) for key in histograms
        )

    @pytest.mark.slow
    def test_trajectory_fanout_honors_shards_per_worker(self, backend):
        """Regression: fan-out once hardcoded shards_per_worker=2."""
        trajectories = 24
        job = CircuitJob(
            circuit=ghz(3),
            shots=SHOTS,
            seed=7,
            method="trajectory",
            trajectories=trajectories,
        )
        for spw in (2, 3):
            with ExecutionService(
                backend, jobs=2, shards_per_worker=spw
            ) as service:
                _, meta = service.run_jobs([job])
            expected = len(plan_shards(trajectories, 2, shards_per_worker=spw))
            assert meta["trajectory_subjobs"] == expected
        assert len(plan_shards(trajectories, 2, shards_per_worker=2)) != len(
            plan_shards(trajectories, 2, shards_per_worker=3)
        )
