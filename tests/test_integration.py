"""Cross-layer integration tests.

These check invariants that span multiple subsystems: transpilation
preserves measured distributions, the pulse mixer reproduces the gate
mixer at matched parameters, mitigation moves distributions the right
way, and the noise knobs act in the expected direction.
"""

import math

import numpy as np
import pytest

from repro.backends import FakeToronto
from repro.core import (
    ExecutionPipeline,
    GateLevelModel,
    HybridGatePulseModel,
)
from repro.problems import MaxCutProblem, three_regular_6
from repro.simulators import simulate_statevector
from repro.transpiler import transpile
from repro.vqa import ExpectedCutCost


@pytest.fixture(scope="module")
def backend():
    return FakeToronto()


@pytest.fixture(scope="module")
def problem():
    return MaxCutProblem(three_regular_6())


class TestTranspiledEquivalence:
    def test_noise_free_counts_match_statevector(self, backend, problem):
        model = GateLevelModel(problem)
        logical = model.build_circuit([0.8, 0.5])
        routed = transpile(
            logical,
            backend.coupling,
            optimization_level=2,
            initial_layout=[0, 1, 4, 7, 10, 12],
            seed=13,
        )
        ideal = simulate_statevector(logical.remove_final_measurements())
        expected_cut = float(
            ideal.probabilities() @ problem.cut_values()
        )
        result = backend.run(
            routed, shots=40_000, seed=17, with_noise=False
        )
        measured_cut = problem.expected_cut(result.get_counts())
        assert measured_cut == pytest.approx(expected_cut, abs=0.08)

    def test_pipeline_prepare_preserves_distribution(
        self, backend, problem
    ):
        model = GateLevelModel(problem)
        circuit = model.build_circuit([0.8, 0.5])
        for go in (False, True):
            pipeline = ExecutionPipeline(
                backend=backend,
                cost=ExpectedCutCost(problem),
                gate_optimization=go,
            )
            prepared = pipeline.prepare(circuit)
            ideal = simulate_statevector(
                circuit.remove_final_measurements()
            )
            expected_cut = float(
                ideal.probabilities() @ problem.cut_values()
            )
            result = backend.run(
                prepared, shots=40_000, seed=23, with_noise=False
            )
            measured = problem.expected_cut(result.get_counts())
            assert measured == pytest.approx(expected_cut, abs=0.08), go


class TestHybridMatchesGateAtMatchedParams:
    def test_pulse_mixer_equals_rx_mixer_noiselessly(
        self, backend, problem
    ):
        """At phase 0 and no frequency shift, the hybrid model with
        amp_for_rotation(2 beta) is the gate model's QAOA point."""
        gamma, beta = 0.8, 0.45
        gate_model = GateLevelModel(problem)
        gate_circuit = gate_model.build_circuit([gamma, beta])

        hybrid_model = HybridGatePulseModel(problem, backend.device)
        amp = hybrid_model.amp_for_rotation(2 * beta)
        hybrid_circuit = hybrid_model.build_circuit(
            [gamma, amp, 0.0, 0.0]
        )

        gate_result = backend.run(
            transpile(
                gate_circuit,
                backend.coupling,
                initial_layout=[0, 1, 4, 7, 10, 12],
                seed=3,
            ),
            shots=40_000,
            seed=5,
            with_noise=False,
        )
        hybrid_result = backend.run(
            transpile(
                hybrid_circuit,
                backend.coupling,
                initial_layout=[0, 1, 4, 7, 10, 12],
                seed=3,
            ),
            shots=40_000,
            seed=5,
            with_noise=False,
        )
        gate_cut = problem.expected_cut(gate_result.get_counts())
        hybrid_cut = problem.expected_cut(hybrid_result.get_counts())
        # the pulse mixer has small Stark residuals, so allow a margin
        assert hybrid_cut == pytest.approx(gate_cut, abs=0.15)


class TestNoiseDirections:
    def test_noise_pulls_toward_mixed_state(self, backend, problem):
        """Depolarising noise drags the cut toward the random-guess
        value |E|/2, so a noiselessly *good* point must get worse."""
        model = GateLevelModel(problem)
        # scan near the known noiseless optimum (gamma ~0.61, beta ~1.19,
        # AR ~0.692 for K_{3,3})
        best_point, best_cut = None, -1.0
        for gamma in np.linspace(0.5, 0.75, 4):
            for beta in np.linspace(1.05, 1.35, 4):
                state = simulate_statevector(
                    model.build_circuit(
                        [gamma, beta]
                    ).remove_final_measurements()
                )
                cut = float(state.probabilities() @ problem.cut_values())
                if cut > best_cut:
                    best_cut, best_point = cut, [gamma, beta]
        assert best_cut > 5.5  # well above |E|/2 = 4.5

        circuit = model.build_circuit(best_point)
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=8192
        )
        prepared = pipeline.prepare(circuit)
        noisy = problem.expected_cut(
            backend.run(prepared, shots=8192, seed=7).get_counts()
        )
        clean = problem.expected_cut(
            backend.run(
                prepared, shots=8192, seed=7, with_noise=False
            ).get_counts()
        )
        assert noisy < clean

    def test_m3_moves_toward_no_readout(self, backend, problem):
        from repro.mitigation import M3Mitigator

        model = GateLevelModel(problem)
        circuit = model.build_circuit([0.8, 0.5])
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=20_000
        )
        prepared = pipeline.prepare(circuit)
        with_ro = backend.run(prepared, shots=20_000, seed=29)
        without_ro = backend.run(
            prepared, shots=20_000, seed=29, with_readout_error=False
        )
        reference = problem.expected_cut(without_ro.get_counts())
        raw = problem.expected_cut(with_ro.get_counts())

        experiment = with_ro.experiments[0]
        clbit_map = experiment.metadata["clbit_to_qubit"]
        physical = [clbit_map[c] for c in sorted(clbit_map)]
        mitigator = M3Mitigator.from_backend(backend, physical)
        mitigated = mitigator.apply(
            experiment.counts
        ).nearest_probability_distribution()
        recovered = problem.expected_cut(mitigated)
        assert abs(recovered - reference) < abs(raw - reference)

    def test_zz_crosstalk_matters(self, problem):
        backend_zz = FakeToronto()
        backend_no_zz = FakeToronto()
        backend_no_zz.noise_model.zz_crosstalk_ghz = 0.0
        model = GateLevelModel(problem)
        circuit = model.build_circuit([0.8, 0.5])
        pipeline = ExecutionPipeline(
            backend=backend_zz, cost=ExpectedCutCost(problem)
        )
        prepared = pipeline.prepare(circuit)
        with_zz = backend_zz.run(
            prepared, shots=4096, seed=31
        ).get_counts()
        without_zz = backend_no_zz.run(
            prepared, shots=4096, seed=31
        ).get_counts()
        assert with_zz != without_zz

    def test_jitter_randomises_pulse_circuits(self, backend, problem):
        model = HybridGatePulseModel(problem, backend.device)
        circuit = model.build_circuit([0.8, 0.3, 0.2, 0.1])
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem)
        )
        prepared = pipeline.prepare(circuit)
        # different seeds draw different jitter realisations
        a = backend.run(prepared, shots=2048, seed=1).get_counts()
        b = backend.run(prepared, shots=2048, seed=2).get_counts()
        assert a != b


class TestDurationAccounting:
    def test_hybrid_mixer_shortens_circuit(self, backend, problem):
        gate_model = GateLevelModel(problem)
        hybrid_model = HybridGatePulseModel(
            problem, backend.device, mixer_duration=128
        )
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=64
        )
        gate_exp = pipeline.execute(
            gate_model.build_circuit([0.8, 0.5]), seed=1
        )
        hybrid_exp = pipeline.execute(
            hybrid_model.build_circuit([0.8, 0.2, 0.0, 0.0]), seed=1
        )
        # same H layer; mixer 128 dt vs 320 dt => shorter total
        assert hybrid_exp.duration < gate_exp.duration
