"""Tests for targets, results, the execution engine and fake backends."""

import numpy as np
import pytest

from repro.backends import (
    Counts,
    FakeAuckland,
    FakeGuadalupe,
    FakeMontreal,
    FakeToronto,
    SimulatedBackend,
    Target,
    execute_circuit,
    fake_backend_by_name,
)
from repro.backends.fake import SPECS
from repro.circuits import QuantumCircuit
from repro.exceptions import BackendError
from repro.transpiler import CouplingMap


def small_target(num_qubits=3):
    return Target(num_qubits, CouplingMap.from_line(num_qubits))


class TestTarget:
    def test_default_durations(self):
        target = small_target()
        assert target.duration("rz") == 0
        assert target.duration("sx") == 160
        assert target.duration("barrier") == 0

    def test_measure_duration_from_readout_length(self):
        target = small_target()
        expected = int(round(750.0 / target.dt))
        assert target.duration("measure", (0,)) == expected

    def test_unknown_gate(self):
        with pytest.raises(BackendError):
            small_target().duration("zz_gate")

    def test_coupling_size_check(self):
        with pytest.raises(BackendError):
            Target(5, CouplingMap.from_line(3))

    def test_duration_provider(self):
        provider = small_target().duration_provider()
        assert provider("cx", (0, 1)) == 1760


class TestCounts:
    def test_basics(self):
        counts = Counts({"00": 60, "11": 40})
        assert counts.shots == 100
        assert counts.most_frequent() == "00"
        assert counts.probabilities()["11"] == pytest.approx(0.4)
        assert counts.int_outcomes() == {0: 60, 3: 40}

    def test_marginal(self):
        counts = Counts({"01": 30, "11": 70})
        # keep clbit 0 only
        marg = counts.marginal([0])
        assert marg == {"1": 100}
        marg1 = counts.marginal([1])
        assert marg1 == {"0": 30, "1": 70}

    def test_empty_errors(self):
        with pytest.raises(BackendError):
            Counts({}).most_frequent()


class TestExecuteCircuit:
    def test_ideal_bell(self):
        target = small_target(2)
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        qc.measure_all()
        result = execute_circuit(qc, target, shots=4000, seed=0)
        probs = result.counts.probabilities()
        assert set(probs) == {"00", "11"}
        assert probs["00"] == pytest.approx(0.5, abs=0.05)

    def test_duration_accumulates(self):
        target = small_target(1)
        qc = QuantumCircuit(1)
        qc.sx(0)
        qc.sx(0)
        qc.measure_all()
        result = execute_circuit(qc, target, shots=1, seed=0)
        assert result.duration == 320 + target.duration("measure", (0,))

    def test_parallel_gates_share_a_moment(self):
        target = small_target(2)
        qc = QuantumCircuit(2)
        qc.sx(0)
        qc.sx(1)
        qc.measure_all()
        result = execute_circuit(qc, target, shots=1, seed=0)
        assert result.duration == 160 + target.duration("measure", (0,))

    def test_subset_of_device(self):
        # a 2-qubit circuit on a 27-qubit device must not blow up
        backend = FakeToronto()
        qc = QuantumCircuit(27)
        qc.h(0)
        qc.cx(0, 1)
        qc.num_clbits = 2
        qc.measure(0, 0)
        qc.measure(1, 1)
        result = backend.run(qc, shots=100, seed=1)
        assert sum(result.get_counts().values()) == 100
        assert result.experiments[0].metadata["active_qubits"] == [0, 1]

    def test_too_many_active_qubits_for_density_matrix(self):
        target = Target(20, CouplingMap.from_line(20))
        qc = QuantumCircuit(20)
        for q in range(20):
            qc.h(q)
        qc.measure_all()
        with pytest.raises(BackendError, match="density_matrix"):
            execute_circuit(qc, target, shots=1, method="density_matrix")
        # the auto policy routes the noiseless 20-qubit circuit to the
        # statevector back-end instead of hitting the 4^n wall
        result = execute_circuit(qc, target, shots=1, seed=0)
        assert result.metadata["method"] == "statevector"

    def test_double_measure_rejected(self):
        target = small_target(1)
        qc = QuantumCircuit(1, 2)
        qc.measure(0, 0)
        qc.measure(0, 1)
        with pytest.raises(BackendError):
            execute_circuit(qc, target, shots=1)

    def test_seed_reproducibility(self):
        backend = FakeToronto()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        qc.measure_all()
        counts_a = backend.run(qc, shots=500, seed=9).get_counts()
        counts_b = backend.run(qc, shots=500, seed=9).get_counts()
        assert counts_a == counts_b

    def test_noise_changes_distribution(self):
        backend = FakeToronto()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        qc.measure_all()
        noisy = backend.run(qc, shots=5000, seed=3).get_counts()
        ideal = backend.run(
            qc, shots=5000, seed=3, with_noise=False
        ).get_counts()
        assert set(ideal) == {"00", "11"}
        # noise populates the odd-parity strings
        assert any(key in noisy for key in ("01", "10"))

    def test_clbit_mapping_metadata(self):
        backend = FakeToronto()
        qc = QuantumCircuit(3, 2)
        qc.h(0)
        qc.measure(0, 1)
        qc.measure(2, 0)
        experiment = backend.run(qc, shots=10, seed=0).experiments[0]
        assert experiment.metadata["clbit_to_qubit"] == {1: 0, 0: 2}


class TestFakeBackends:
    @pytest.mark.parametrize(
        "factory,name",
        [
            (FakeAuckland, "ibm_auckland"),
            (FakeToronto, "ibmq_toronto"),
            (FakeGuadalupe, "ibmq_guadalupe"),
            (FakeMontreal, "ibmq_montreal"),
        ],
    )
    def test_construction(self, factory, name):
        backend = factory()
        assert backend.name == name
        assert backend.coupling.is_connected()
        assert backend.noise_model is not None
        assert backend.device.num_qubits == backend.num_qubits

    def test_table1_values_survive(self):
        for key, spec in SPECS.items():
            backend = fake_backend_by_name(key)
            row = backend.properties_row()
            assert row["pauli_x_error"] == pytest.approx(spec.pauli_x_error)
            assert row["cnot_error"] == pytest.approx(spec.cnot_error)
            assert row["t1_us"] == pytest.approx(spec.t1_us)
            assert row["readout_length_ns"] == pytest.approx(
                spec.readout_length_ns
            )

    def test_by_name_variants(self):
        assert fake_backend_by_name("ibmq_toronto").name == "ibmq_toronto"
        assert fake_backend_by_name("TORONTO").name == "ibmq_toronto"
        with pytest.raises(KeyError):
            fake_backend_by_name("ibmq_nowhere")

    def test_coupled_pairs_detuned(self):
        # frequency allocation must never give coupled qubits equal freqs
        for key in SPECS:
            device = fake_backend_by_name(key).device
            for i, j in device.coupled_pairs():
                assert (
                    abs(device.qubits[i].frequency - device.qubits[j].frequency)
                    > 0.01
                )

    def test_guadalupe_is_16q(self):
        assert FakeGuadalupe().num_qubits == 16

    def test_readout_asymmetry(self):
        backend = FakeToronto()
        p10, p01 = backend.noise_model.readout_error.flip_probabilities(0)
        assert p01 > p10  # 1->0 decay-flavoured asymmetry

    def test_pulse_unitary_for_mixer_gate(self):
        from repro.core.models import HybridGatePulseModel
        from repro.problems import MaxCutProblem, three_regular_6
        from repro.utils.linalg import is_unitary

        backend = FakeToronto()
        model = HybridGatePulseModel(
            MaxCutProblem(three_regular_6()), backend.device
        )
        gate = model._mixer_pulse_gate(0.4, 0.3, 0.1)
        unitary = backend.pulse_unitary(gate, (5,))
        assert unitary.shape == (2, 2)
        assert is_unitary(unitary)
