"""Unit tests for the pulse IR: waveforms, channels, instructions, schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Parameter
from repro.exceptions import PulseError
from repro.pulse import (
    Acquire,
    Constant,
    ControlChannel,
    Delay,
    Drag,
    DriveChannel,
    Gaussian,
    GaussianSquare,
    MeasureChannel,
    Play,
    Schedule,
    SetFrequency,
    ShiftFrequency,
    ShiftPhase,
)


class TestChannels:
    def test_equality_and_hash(self):
        assert DriveChannel(0) == DriveChannel(0)
        assert DriveChannel(0) != DriveChannel(1)
        assert DriveChannel(0) != ControlChannel(0)
        assert len({DriveChannel(0), DriveChannel(0), ControlChannel(0)}) == 2

    def test_repr(self):
        assert repr(DriveChannel(3)) == "d3"
        assert repr(ControlChannel(1)) == "u1"
        assert repr(MeasureChannel(2)) == "m2"

    def test_bad_index(self):
        with pytest.raises(PulseError):
            DriveChannel(-1)

    def test_sorting(self):
        chans = sorted([DriveChannel(1), ControlChannel(0), DriveChannel(0)])
        assert repr(chans[0]) == "d0"


class TestWaveforms:
    def test_constant_samples(self):
        pulse = Constant(32, 0.5)
        samples = pulse.samples()
        assert len(samples) == 32
        np.testing.assert_allclose(samples, 0.5)

    def test_constant_angle(self):
        pulse = Constant(32, 0.5, angle=np.pi / 2)
        np.testing.assert_allclose(pulse.samples(), 0.5j, atol=1e-12)

    def test_gaussian_lifted_edges(self):
        pulse = Gaussian(160, 1.0, 40)
        samples = pulse.samples()
        assert len(samples) == 160
        assert abs(samples[0]) < 0.02  # lifted to ~0 at edges
        assert abs(samples[-1]) < 0.02
        assert np.max(np.abs(samples)) == pytest.approx(1.0, abs=0.01)

    def test_gaussian_granularity(self):
        with pytest.raises(PulseError):
            Gaussian(48, 0.5, 12)  # not multiple of 32

    def test_gaussian_square_flat_top(self):
        pulse = GaussianSquare(256, 0.8, 32, width=128)
        samples = pulse.samples()
        mid = samples[len(samples) // 2]
        assert abs(mid) == pytest.approx(0.8, abs=1e-6)
        assert abs(samples[0]) < 0.02
        # flat region is flat
        center = np.arange(80, 176)
        np.testing.assert_allclose(np.abs(samples[center]), 0.8, atol=1e-9)

    def test_gaussian_square_width_bounds(self):
        with pytest.raises(PulseError):
            GaussianSquare(128, 0.5, 32, width=200)

    def test_drag_quadrature(self):
        pulse = Drag(160, 0.5, 40, beta=0.2)
        samples = pulse.samples()
        assert np.max(np.abs(samples.imag)) > 0
        # imaginary part is odd about the center -> integrates to ~0
        assert abs(np.sum(samples.imag)) < 1e-6

    def test_amp_limit(self):
        with pytest.raises(PulseError):
            Constant(32, 1.2)
        with pytest.raises(PulseError):
            Gaussian(64, -1.1, 16)

    def test_area_scales_with_amp(self):
        a1 = Gaussian(160, 0.2, 40).area()
        a2 = Gaussian(160, 0.4, 40).area()
        assert a2.real == pytest.approx(2 * a1.real, rel=1e-9)

    def test_parametric_amp(self):
        amp = Parameter("amp")
        pulse = Gaussian(160, amp, 40)
        assert pulse.is_parameterized
        with pytest.raises(Exception):
            pulse.samples()
        bound = pulse.assign_parameters({amp: 0.3})
        assert not bound.is_parameterized
        assert np.max(np.abs(bound.samples())) == pytest.approx(0.3, abs=0.01)

    def test_parametric_amp_validated_on_bind(self):
        amp = Parameter("amp")
        pulse = Gaussian(160, amp, 40)
        with pytest.raises(PulseError):
            pulse.assign_parameters({amp: 1.5})

    def test_bad_durations(self):
        with pytest.raises(PulseError):
            Constant(0, 0.5)
        with pytest.raises(PulseError):
            Constant(-32, 0.5)
        with pytest.raises(PulseError):
            Constant(33, 0.5)

    @settings(max_examples=20, deadline=None)
    @given(
        duration=st.sampled_from([32, 64, 96, 128, 160, 320]),
        amp=st.floats(0.05, 1.0),
    )
    def test_gaussian_peak_bounded_by_amp(self, duration, amp):
        pulse = Gaussian(duration, amp, duration / 4)
        assert pulse.max_amplitude() <= amp + 1e-9


class TestSchedule:
    def test_append_sequences_on_channel(self):
        d0 = DriveChannel(0)
        sched = Schedule()
        sched.append(Play(Constant(32, 0.1), d0))
        sched.append(Play(Constant(64, 0.1), d0))
        assert sched.duration == 96
        starts = [t for t, _ in sched.channel_timeline(d0)]
        assert starts == [0, 32]

    def test_parallel_channels_independent(self):
        sched = Schedule()
        sched.append(Play(Constant(32, 0.1), DriveChannel(0)))
        sched.append(Play(Constant(64, 0.1), DriveChannel(1)))
        assert sched.duration == 64
        assert sched.channel_duration(DriveChannel(0)) == 32

    def test_overlap_rejected(self):
        d0 = DriveChannel(0)
        sched = Schedule()
        sched.insert(0, Play(Constant(64, 0.1), d0))
        with pytest.raises(PulseError):
            sched.insert(32, Play(Constant(64, 0.1), d0))

    def test_zero_duration_never_overlaps(self):
        d0 = DriveChannel(0)
        sched = Schedule()
        sched.insert(0, Play(Constant(64, 0.1), d0))
        sched.insert(32, ShiftPhase(0.5, d0))  # fine: zero duration
        assert len(sched) == 2

    def test_alignment_enforced(self):
        d0 = DriveChannel(0)
        sched = Schedule()
        with pytest.raises(PulseError):
            sched.insert(8, Play(Constant(32, 0.1), d0))

    def test_shift_and_union(self):
        d0, d1 = DriveChannel(0), DriveChannel(1)
        a = Schedule((0, Play(Constant(32, 0.1), d0)))
        b = Schedule((0, Play(Constant(32, 0.2), d1)))
        merged = a | b.shift(32)
        assert merged.duration == 64
        assert len(merged.channels) == 2

    def test_then_sequential(self):
        d0 = DriveChannel(0)
        a = Schedule((0, Play(Constant(32, 0.1), d0)))
        b = Schedule((0, Play(Constant(32, 0.2), d0)))
        combined = a + b
        starts = [t for t, _ in combined.channel_timeline(d0)]
        assert starts == [0, 32]

    def test_filter(self):
        sched = Schedule()
        sched.append(Play(Constant(32, 0.1), DriveChannel(0)))
        sched.append(Play(Constant(32, 0.1), DriveChannel(1)))
        only0 = sched.filter([DriveChannel(0)])
        assert only0.channels == [DriveChannel(0)]

    def test_parametric_schedule_binding(self):
        amp = Parameter("amp")
        phi = Parameter("phi")
        d0 = DriveChannel(0)
        sched = Schedule()
        sched.append(ShiftPhase(phi, d0))
        sched.append(Play(Gaussian(160, amp, 40), d0))
        assert sched.parameters == {amp, phi}
        bound = sched.assign_parameters({amp: 0.4, phi: 1.0})
        assert not bound.is_parameterized
        # sequence binding follows sorted-name order
        bound2 = sched.assign_parameters([0.4, 1.0])
        assert not bound2.is_parameterized

    def test_bind_wrong_length(self):
        amp = Parameter("amp")
        sched = Schedule((0, Play(Gaussian(160, amp, 40), DriveChannel(0))))
        with pytest.raises(PulseError):
            sched.assign_parameters([0.1, 0.2])

    def test_instructions(self):
        d0 = DriveChannel(0)
        sched = Schedule()
        sched.append(SetFrequency(5.1, d0))
        sched.append(ShiftFrequency(-0.05, d0))
        sched.append(Delay(32, d0))
        sched.append(Acquire(128, MeasureChannel(0)))
        # delay ends at 32 on d0; acquire spans [0, 128) on m0
        assert sched.duration == 128

    def test_delay_alignment(self):
        with pytest.raises(PulseError):
            Delay(10, DriveChannel(0))
