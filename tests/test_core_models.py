"""Tests for the gate / hybrid / pulse QAOA models and their training."""

import math

import numpy as np
import pytest

from repro.backends import FakeToronto
from repro.core import (
    ExecutionPipeline,
    GateLevelModel,
    HybridGatePulseModel,
    PulseLevelModel,
    train_model,
)
from repro.core.models import FREQ_UNIT
from repro.exceptions import ProblemError
from repro.problems import MaxCutProblem, three_regular_6
from repro.vqa import CVaRCost, ExpectedCutCost
from repro.vqa.optimizers import COBYLA


@pytest.fixture(scope="module")
def backend():
    return FakeToronto()


@pytest.fixture(scope="module")
def problem():
    return MaxCutProblem(three_regular_6())


class TestGateLevelModel:
    def test_parameter_layout(self, problem):
        model = GateLevelModel(problem, p=2)
        assert model.num_parameters == 4
        assert len(model.bounds()) == 4

    def test_build_circuit(self, problem):
        model = GateLevelModel(problem)
        circuit = model.build_circuit([0.5, 0.3])
        ops = circuit.count_ops()
        assert ops["rzz"] == 9
        assert ops["rx"] == 6
        assert ops["measure"] == 6

    def test_wrong_parameter_count(self, problem):
        model = GateLevelModel(problem)
        with pytest.raises(ProblemError):
            model.build_circuit([0.5])

    def test_mixer_duration_is_two_sx(self, problem, backend):
        model = GateLevelModel(problem)
        assert model.mixer_duration(backend.target) == 320


class TestHybridModel:
    def test_parameter_layout_shared(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        # gamma + (amp, phase, freq)
        assert model.num_parameters == 4

    def test_parameter_layout_per_qubit(self, problem, backend):
        model = HybridGatePulseModel(
            problem, backend.device, share_mixer_params=False
        )
        assert model.num_parameters == 1 + 3 * 6

    def test_bounds_match_paper(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        bounds = model.bounds()
        assert bounds[1] == (0.0, 1.0)  # |amp| <= 1
        assert bounds[2] == (0.0, 2 * math.pi)  # phase in [0, 2 pi)
        assert bounds[3] == (-1.0, 1.0)  # +-100 MHz in scaled units
        assert FREQ_UNIT == pytest.approx(0.1)

    def test_build_circuit_has_pulse_mixer(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        circuit = model.build_circuit(model.initial_point(0))
        ops = circuit.count_ops()
        assert ops["rzz"] == 9  # gate-level Hamiltonian layer intact
        assert ops["mixer_pulse"] == 6
        assert "rx" not in ops

    def test_duration_granularity(self, problem, backend):
        with pytest.raises(ProblemError):
            HybridGatePulseModel(
                problem, backend.device, mixer_duration=100
            )

    def test_max_rotation_scales_with_duration(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        assert model.max_mixer_rotation(320) > model.max_mixer_rotation(128)
        assert model.max_mixer_rotation(128) > math.pi
        assert model.max_mixer_rotation(96) < math.pi

    def test_amp_for_rotation_roundtrip(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        amp = model.amp_for_rotation(1.5)
        assert amp * model.max_mixer_rotation() == pytest.approx(1.5)
        with pytest.raises(ProblemError):
            model.amp_for_rotation(100.0)

    def test_rescaled_parameters_preserve_angle(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        values = np.array([0.8, 0.3, 1.2, 0.05])
        rescaled = model.rescaled_parameters(values, 160)
        angle_before = values[1] * model.max_mixer_rotation(320)
        angle_after = rescaled[1] * model.max_mixer_rotation(160)
        assert angle_before == pytest.approx(angle_after)
        # gamma, phase, freq untouched
        assert rescaled[0] == values[0]
        assert rescaled[3] == values[3]

    def test_rescaled_parameters_reflect_large_angles(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        # pick an amplitude whose rotation (mod 2 pi) lies in (pi, 2 pi)
        big_amp = 4.5 / model.max_mixer_rotation(320)
        values = np.array([0.5, big_amp, 0.0, 0.0])
        rescaled = model.rescaled_parameters(values, 320)
        angle = rescaled[1] * model.max_mixer_rotation(320)
        assert angle == pytest.approx(2 * math.pi - 4.5)
        assert angle <= math.pi + 1e-9
        assert rescaled[2] == pytest.approx(math.pi)  # phase flipped

    def test_rescale_infeasible_raises(self, problem, backend):
        model = HybridGatePulseModel(problem, backend.device)
        values = np.array([0.5, 0.38, 0.0, 0.0])  # ~pi rotation
        with pytest.raises(ProblemError):
            model.rescaled_parameters(values, 32)

    def test_mixer_unitary_is_rotation(self, problem, backend):
        """The pulse mixer at phase 0, no shift, approximates RX."""
        from repro.utils.linalg import process_fidelity

        model = HybridGatePulseModel(problem, backend.device)
        angle = 1.2
        gate = model._mixer_pulse_gate(
            model.amp_for_rotation(angle), 0.0, 0.0
        )
        unitary = backend.pulse_unitary(gate, (0,))
        target = np.array(
            [
                [math.cos(angle / 2), -1j * math.sin(angle / 2)],
                [-1j * math.sin(angle / 2), math.cos(angle / 2)],
            ]
        )
        assert process_fidelity(unitary, target) > 0.99


class TestPulseLevelModel:
    def test_parameter_count(self, problem, backend):
        model = PulseLevelModel(problem, backend)
        # 9 edges x 4 + 6 qubits x 3
        assert model.num_parameters == 36 + 18

    def test_build_circuit_structure(self, problem, backend):
        model = PulseLevelModel(problem, backend)
        circuit = model.build_circuit(model.initial_point(0))
        ops = circuit.count_ops()
        assert ops["cx_pulse"] == 18  # two CX pulses per edge
        assert ops["mixer_pulse"] == 6
        assert "rzz" not in ops  # the protected RZZ structure is gone
        assert "cx" not in ops  # no calibrated gates in the H layer

    def test_cx_pulse_is_unitary_with_duration(self, problem, backend):
        from repro.utils.linalg import is_unitary

        model = PulseLevelModel(problem, backend)
        gate = model._cx_pulse_gate(0, 1, 0.9, 0.1, 0.05)
        assert is_unitary(gate.unitary)
        assert gate.duration > 0

    def test_calibration_point_is_cx(self, problem, backend):
        from repro.utils.linalg import process_fidelity

        model = PulseLevelModel(problem, backend)
        gate = model._cx_pulse_gate(0, 1, 1.0, 0.0, 0.0)
        cx = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]],
            dtype=complex,
        )
        assert process_fidelity(gate.unitary, cx) > 0.9

    def test_detuned_pulse_degrades_cx(self, problem, backend):
        from repro.utils.linalg import process_fidelity

        model = PulseLevelModel(problem, backend)
        cx = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]],
            dtype=complex,
        )
        at_cal = model._cx_pulse_gate(0, 1, 1.0, 0.0, 0.0)
        detuned = model._cx_pulse_gate(0, 1, 1.0, 0.0, 0.5)  # +50 MHz
        assert process_fidelity(detuned.unitary, cx) < process_fidelity(
            at_cal.unitary, cx
        )


class TestTraining:
    def test_short_training_improves(self, problem, backend):
        pipeline = ExecutionPipeline(
            backend=backend,
            cost=ExpectedCutCost(problem),
            shots=512,
        )
        model = GateLevelModel(problem)
        result = train_model(
            model, pipeline, COBYLA(maxiter=12), seed=5
        )
        first = result.trace.values[0]
        assert result.best_value >= first
        assert result.mixer_duration == 320
        assert result.circuit_duration > 0

    def test_deterministic_given_seed(self, problem, backend):
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=256
        )
        model = GateLevelModel(problem)
        a = train_model(model, pipeline, COBYLA(maxiter=5), seed=3)
        b = train_model(model, pipeline, COBYLA(maxiter=5), seed=3)
        assert a.best_value == pytest.approx(b.best_value)
        np.testing.assert_allclose(a.best_parameters, b.best_parameters)

    def test_m3_pipeline_runs(self, problem, backend):
        pipeline = ExecutionPipeline(
            backend=backend,
            cost=ExpectedCutCost(problem),
            shots=256,
            gate_optimization=True,
            use_m3=True,
        )
        model = GateLevelModel(problem)
        value, info = pipeline.evaluate(
            model.build_circuit([0.7, 0.4]), seed=2
        )
        assert "mitigated" in info
        assert 0 <= value <= 9

    def test_cvar_cost_pipeline(self, problem, backend):
        pipeline_raw = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=1024
        )
        pipeline_cvar = ExecutionPipeline(
            backend=backend,
            cost=CVaRCost(problem, 0.3),
            shots=1024,
        )
        circuit = GateLevelModel(problem).build_circuit([0.7, 0.4])
        raw, _ = pipeline_raw.evaluate(circuit, seed=4)
        cvar, _ = pipeline_cvar.evaluate(circuit, seed=4)
        assert cvar >= raw  # CVaR of the best 30% dominates the mean

    def test_pulse_efficient_pipeline(self, problem, backend):
        pipeline = ExecutionPipeline(
            backend=backend,
            cost=ExpectedCutCost(problem),
            shots=256,
            pulse_efficient=True,
        )
        circuit = GateLevelModel(problem).build_circuit([0.7, 0.4])
        prepared = pipeline.prepare(circuit)
        ops = prepared.count_ops()
        assert ops.get("rzx_pulse", 0) >= 1  # RZZ lowered onto scaled CR
        value, _ = pipeline.evaluate(circuit, seed=1)
        assert 0 <= value <= 9

    def test_layout_too_small(self, backend):
        from repro.problems import three_regular_8

        problem8 = MaxCutProblem(three_regular_8())
        pipeline = ExecutionPipeline(
            backend=backend,
            cost=ExpectedCutCost(problem8),
            layout=[0, 1, 2],
        )
        from repro.exceptions import BackendError

        with pytest.raises(BackendError):
            pipeline.prepare(
                GateLevelModel(problem8).build_circuit([0.5, 0.5])
            )
