"""Correctness tests for the standard benchmark circuit suite.

The generators live in ``benchmarks/circuits`` (outside the package),
so the benchmarks directory is added to the path the same way the
bench scripts do it.
"""

import math
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from circuits import (  # noqa: E402
    SUITE,
    adder,
    fredkin,
    ghz,
    grover,
    qft,
    toffoli,
    trotter_echo,
    wstate,
)

from repro.backends import Target, select_method  # noqa: E402
from repro.backends.engine import execute_circuit  # noqa: E402
from repro.circuits import QuantumCircuit  # noqa: E402
from repro.noise import NoiseModel, ReadoutError  # noqa: E402
from repro.simulators import (  # noqa: E402
    circuit_to_unitary,
    simulate_statevector,
)
from repro.transpiler import CliffordBlockAnalysis, CouplingMap, transpile  # noqa: E402


def _counts(circuit, shots=200, seed=11):
    width = max(circuit.num_qubits, 2)
    target = Target(width, CouplingMap.full(width))
    return dict(
        execute_circuit(
            circuit, target, shots=shots, seed=seed,
            with_readout_error=False,
        ).counts
    )


class TestStates:
    def test_ghz_counts_are_two_peaked(self):
        counts = _counts(ghz(8), shots=400)
        assert set(counts) == {"0" * 8, "1" * 8}
        assert sum(counts.values()) == 400

    def test_wstate_amplitudes_uniform_one_hot(self):
        state = simulate_statevector(wstate(4, measure=False))
        probs = state.probabilities()
        one_hot = [1 << k for k in range(4)]
        for idx, p in enumerate(probs):
            expected = 0.25 if idx in one_hot else 0.0
            assert p == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_wstate_any_width(self, n):
        probs = simulate_statevector(wstate(n, measure=False)).probabilities()
        for k in range(n):
            assert probs[1 << k] == pytest.approx(1.0 / n, abs=1e-12)


class TestArithmetic:
    def test_toffoli_truth(self):
        assert _counts(toffoli(), shots=100) == {"111": 100}

    def test_fredkin_truth(self):
        assert _counts(fredkin(), shots=100) == {"101": 100}

    def test_toffoli_decomposition_matches_ccx_unitary(self):
        from circuits.arithmetic import append_ccx

        qc = QuantumCircuit(3)
        append_ccx(qc, 0, 1, 2)
        ccx = np.eye(8)
        ccx[[3, 7], [3, 7]] = 0
        ccx[3, 7] = ccx[7, 3] = 1
        u = circuit_to_unitary(qc)
        assert np.allclose(u / u[0, 0], ccx, atol=1e-9)

    @pytest.mark.parametrize(
        "a,b", [(0, 0), (1, 2), (3, 2), (3, 3), (2, 3)]
    )
    def test_cuccaro_adder_sums(self, a, b):
        counts = _counts(adder(num_bits=2, a_value=a, b_value=b), shots=50)
        assert len(counts) == 1
        bits = next(iter(counts))  # clbit 0 is the rightmost character
        total = a + b
        carry_out = int(bits[0])
        b_out = int(bits[-3]) | (int(bits[-5]) << 1)
        assert (carry_out << 2) | b_out == total


class TestAlgorithms:
    def test_qft_matrix_is_dft(self):
        n = 3
        u = circuit_to_unitary(qft(n))
        dim = 1 << n
        omega = np.exp(2j * math.pi / dim)
        dft = np.array(
            [[omega ** (i * j) for j in range(dim)] for i in range(dim)]
        ) / math.sqrt(dim)
        assert np.allclose(u, dft, atol=1e-9)

    @pytest.mark.parametrize("marked", [0, 3, 5, 7])
    def test_grover_amplifies_marked_state_n3(self, marked):
        counts = _counts(grover(3, marked=marked), shots=1000, seed=2)
        label = format(marked, "03b")  # big-endian count keys
        assert counts.get(label, 0) > 900

    def test_grover_n2_is_deterministic(self):
        counts = _counts(grover(2, marked=2), shots=100)
        assert set(counts) == {format(2, "02b")}


class TestTrotterEcho:
    def test_echo_returns_to_ghz(self):
        counts = _counts(trotter_echo(6, steps=2), shots=300)
        assert set(counts) == {"0" * 6, "1" * 6}

    def test_echo_collapses_to_clifford_under_optimization(self):
        qc = trotter_echo(6, steps=2)
        out = transpile(
            qc, CouplingMap.from_line(6), optimization_level=2, seed=7
        )
        tag = out.metadata["clifford_blocks"]
        assert tag["full"], f"echo did not collapse: {tag}"
        assert out.size() < qc.size() // 2

    def test_echo_newly_routes_to_stabilizer_under_noise(self):
        # width past the density-matrix budget, so the original
        # (non-Clifford as written) needs trajectories while the
        # optimized (collapsed-to-Clifford) circuit wins on stabilizer
        n = 20
        qc = trotter_echo(n, steps=2)
        target = Target(n, CouplingMap.from_line(n))
        noise = NoiseModel(n)
        noise.add_depolarizing_error("cx", 0.02, 2)
        noise.set_readout_error(ReadoutError.uniform(n, 0.02))
        before = select_method(qc, target, noise)
        out = transpile(
            qc, CouplingMap.from_line(n), optimization_level=2, seed=7
        )
        after = select_method(out, target, noise)
        assert before != "stabilizer"
        assert after == "stabilizer"


class TestSuiteRegistry:
    def test_registry_shape(self):
        assert len(SUITE) >= 8
        for name, factory in SUITE.items():
            circuit = factory()
            assert circuit.num_qubits >= 2, name
            assert circuit.size() > 0, name
            # factories return fresh objects — no shared mutable state
            assert factory() is not circuit, name

    def test_names_encode_width(self):
        for name, factory in SUITE.items():
            width = int(name.rsplit("_", 1)[1][1:])
            circuit = factory()
            expected = (
                circuit.num_qubits
                if not name.startswith("qec")
                else None
            )
            if expected is not None:
                assert width == expected, name

    def test_every_suite_circuit_is_measured(self):
        for name, factory in SUITE.items():
            circuit = factory()
            assert circuit.num_clbits > 0, name
            assert any(
                inst.operation.name == "measure"
                for inst in circuit.instructions
            ), name

    def test_qec_circuit_is_fully_clifford(self):
        circuit = SUITE["qec_d5"]()
        tag = CliffordBlockAnalysis()(circuit).metadata["clifford_blocks"]
        assert tag["full"]
