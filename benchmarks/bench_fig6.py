"""Benchmark: regenerate Fig. 6 (optimized gate vs hybrid, tasks 1-3)."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6(benchmark, quick_config):
    result = run_once(benchmark, fig6.run, quick_config)
    print()
    print(fig6.render(result))
    assert len(result.ars) == 12  # 2 backends x 3 tasks x 2 models
    for key, ar in result.ars.items():
        assert 0.0 <= ar <= 1.0, key
