"""Micro-benchmarks of the substrates the experiments stand on.

These time the hot paths of the library: statevector simulation, noisy
density-matrix execution, SABRE transpilation, pulse propagators and M3
mitigation.  Unlike the per-figure benches, they use pytest-benchmark's
normal multi-round timing.
"""

import numpy as np
import pytest

from repro.backends import FakeToronto
from repro.mitigation import M3Mitigator
from repro.noise import ReadoutError
from repro.problems import MaxCutProblem, three_regular_6
from repro.pulse import DriveChannel, Gaussian, GaussianSquare, Play, Schedule
from repro.pulsesim import cr_pair_propagator, drive_channel_propagator
from repro.simulators import simulate_statevector
from repro.transpiler import transpile
from repro.vqa import qaoa_ansatz


@pytest.fixture(scope="module")
def backend():
    return FakeToronto()


@pytest.fixture(scope="module")
def bound_qaoa():
    circuit, gammas, betas = qaoa_ansatz(three_regular_6(), p=1)
    return circuit.assign_parameters({gammas[0]: 0.7, betas[0]: 0.35})


def test_statevector_qaoa_6q(benchmark, bound_qaoa):
    circuit = bound_qaoa.remove_final_measurements()
    state = benchmark(simulate_statevector, circuit)
    assert np.isclose(state.norm, 1.0)


def test_noisy_execution_6q(benchmark, backend, bound_qaoa):
    routed = transpile(
        bound_qaoa,
        backend.coupling,
        initial_layout=[0, 1, 4, 7, 10, 12],
        seed=3,
    )

    def run():
        return backend.run(routed, shots=1024, seed=5).get_counts()

    counts = benchmark(run)
    assert sum(counts.values()) == 1024


def test_sabre_transpile(benchmark, backend, bound_qaoa):
    routed = benchmark(
        transpile, bound_qaoa, backend.coupling, 2, seed=1
    )
    assert routed.num_qubits == 27


def test_drive_pulse_propagator(benchmark, backend):
    schedule = Schedule(
        (0, Play(Gaussian(320, 0.4, 80), DriveChannel(0)))
    )
    timeline = schedule.channel_timeline(DriveChannel(0))
    unitary = benchmark(
        drive_channel_propagator, timeline, backend.device, 0
    )
    assert unitary.shape == (2, 2)


def test_cr_pulse_propagator(benchmark, backend):
    device = backend.device
    control, target = device.coupled_pairs()[0]
    samples = GaussianSquare(640, 0.9, 32, width=512).samples()
    unitary = benchmark(
        cr_pair_propagator, samples, device, control, target
    )
    assert unitary.shape == (4, 4)


def test_m3_mitigation_6q(benchmark):
    readout = ReadoutError.uniform(6, 0.03)
    rng = np.random.default_rng(0)
    keys = {format(int(i), "06b") for i in rng.integers(0, 64, 40)}
    counts = {k: int(rng.integers(1, 200)) for k in keys}
    mitigator = M3Mitigator(readout)
    quasi = benchmark(mitigator.apply, counts)
    assert abs(sum(quasi.values()) - 1.0) < 0.2


def test_maxcut_expectation(benchmark):
    problem = MaxCutProblem(three_regular_6())
    rng = np.random.default_rng(1)
    counts = {
        format(int(i), "06b"): int(c)
        for i, c in zip(rng.integers(0, 64, 50), rng.integers(1, 100, 50))
    }
    value = benchmark(problem.expected_cut, counts)
    assert 0 <= value <= 9
