"""Benchmark: regenerate Table I (backend calibration data)."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, quick_config):
    result = run_once(benchmark, table1.run, quick_config)
    print()
    print(table1.render(result))
    assert table1.verify(result) == []
