"""Repetition-code syndrome-extraction circuits for stabilizer benches.

The generator follows the ``qec_en_nX`` shape from the standard QASM
benchmark suites — encode a logical qubit, then extract every stabilizer
of the code onto fresh ancillas — but is parameterised in code distance
so it scales to the 100+-qubit regime the packed tableau kernel targets.

Layout for distance ``d`` with ``r`` rounds:

- data qubits ``0 .. d-1`` hold the logical state (|+> encoded across
  the chain with H + a CX ladder, so both X and Z noise scramble the
  syndrome distribution);
- each round gets ``d-1`` *fresh* ancillas (the engine measures only at
  the end of the circuit, so mid-circuit ancilla reuse is out — fresh
  ancillas per round give the standard multi-round shape with terminal
  measurement);
- ancilla ``j`` of a round couples to data ``j`` and ``j+1`` (CX data ->
  ancilla), measuring the Z_j Z_{j+1} parity check;
- only ancillas are measured: ``r * (d - 1)`` classical bits.

Everything is Clifford (h/cx), so the circuits run on the stabilizer
method at any width.
"""

from __future__ import annotations

from repro.circuits import QuantumCircuit

__all__ = [
    "repetition_syndrome_circuit",
    "syndrome_qubit_count",
    "syndrome_measured_count",
]


def syndrome_qubit_count(distance: int, rounds: int = 1) -> int:
    """Total qubits: ``distance`` data + ``rounds * (distance-1)`` ancillas."""
    return distance + rounds * (distance - 1)


def syndrome_measured_count(distance: int, rounds: int = 1) -> int:
    """Measured (ancilla) qubits: ``rounds * (distance - 1)``."""
    return rounds * (distance - 1)


def repetition_syndrome_circuit(
    distance: int, rounds: int = 1
) -> QuantumCircuit:
    """Distance-``distance`` repetition-code syndrome extraction.

    Returns a Clifford circuit on
    :func:`syndrome_qubit_count` qubits measuring
    :func:`syndrome_measured_count` ancillas (data qubits are left
    unmeasured, as on hardware).  ``distance=51, rounds=1`` gives the
    101-qubit / 50-bit shape used by the packed-kernel benchmark.
    """
    if distance < 2:
        raise ValueError("repetition code needs distance >= 2")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    num_qubits = syndrome_qubit_count(distance, rounds)
    num_measured = syndrome_measured_count(distance, rounds)
    circuit = QuantumCircuit(num_qubits, num_measured)
    # encode |+_L>: H on the first data qubit, CX ladder down the chain
    circuit.h(0)
    for data in range(distance - 1):
        circuit.cx(data, data + 1)
    # syndrome extraction: each round couples its own fresh ancillas.
    # All measures go at the very end: the engine only supports
    # terminal measurement, and keeping the instruction list free of
    # mid-circuit measures lets routing insert SWAPs anywhere without
    # re-using an already-measured physical wire.
    clbit = 0
    for round_index in range(rounds):
        base = distance + round_index * (distance - 1)
        for check in range(distance - 1):
            ancilla = base + check
            circuit.cx(check, ancilla)
            circuit.cx(check + 1, ancilla)
    for round_index in range(rounds):
        base = distance + round_index * (distance - 1)
        for check in range(distance - 1):
            circuit.measure(base + check, clbit)
            clbit += 1
    return circuit
