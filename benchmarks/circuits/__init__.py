"""Reusable benchmark circuit generators (imported by bench scripts)."""
