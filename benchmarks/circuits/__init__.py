"""Reusable benchmark circuit generators (imported by bench scripts).

:data:`SUITE` is the standard circuit family the transpiler benchmark
reports over — the snippet-2 style named set (``ghz_n8``,
``wstate_n5``, ...).  Every entry is a zero-argument factory returning
a fresh measured circuit, so benches and tests can never mutate shared
state.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.circuits import QuantumCircuit

from .algorithms import grover, qft
from .arithmetic import adder, fredkin, toffoli
from .qec import repetition_syndrome_circuit
from .states import ghz, wstate
from .trotter import tfim_trotter, trotter_echo

__all__ = [
    "SUITE",
    "adder",
    "fredkin",
    "ghz",
    "grover",
    "qft",
    "repetition_syndrome_circuit",
    "tfim_trotter",
    "toffoli",
    "trotter_echo",
    "wstate",
]

#: name -> factory for the standard transpiler-benchmark suite
SUITE: dict[str, Callable[[], QuantumCircuit]] = {
    "ghz_n8": lambda: ghz(8),
    "wstate_n5": lambda: wstate(5),
    "adder_n6": lambda: adder(2, a_value=3, b_value=2),
    "toffoli_n3": toffoli,
    "fredkin_n3": fredkin,
    "grover_n3": lambda: grover(3, marked=5),
    "qft_n5": lambda: qft(5, measure=True),
    "basis_trotter_n6": lambda: tfim_trotter(6, steps=3),
    "trotter_echo_n20": lambda: trotter_echo(20, steps=2),
    "qec_d5": lambda: repetition_syndrome_circuit(5, rounds=2),
}
