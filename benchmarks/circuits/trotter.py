"""Trotterized transverse-field Ising evolution circuits.

Two generators:

* :func:`tfim_trotter` — second-order (Strang) product formula for
  ``H = -J sum Z_i Z_{i+1} - h sum X_i`` on a line.  The symmetric
  splitting surrounds every RZZ layer with half-angle RX layers, so
  adjacent steps expose back-to-back ``rx(h dt/2) . rx(h dt/2)`` pairs
  — exactly the structure rotation merging collapses.  This is the
  suite's ``basis_trotter`` entry.

* :func:`trotter_echo` — GHZ preparation followed by ``steps`` forward
  Trotter steps and their exact algebraic reverse.  The physical
  content is the Clifford GHZ prep; the echo is pure gate froth that a
  sound optimizer removes entirely.  Under a Pauli noise model the
  original (non-Clifford RX/RZZ angles, width past the density-matrix
  budget) routes to the trajectory sampler, while the optimized
  remnant is Clifford and routes to the stabilizer back-end — the
  suite's routing-improvement probe.
"""

from __future__ import annotations

from repro.circuits import QuantumCircuit

__all__ = ["tfim_trotter", "trotter_echo"]


def tfim_trotter(
    num_qubits: int,
    steps: int = 3,
    dt: float = 0.15,
    coupling: float = 1.0,
    field: float = 0.7,
    measure: bool = True,
) -> QuantumCircuit:
    """Second-order Trotter circuit for the transverse-field Ising chain."""
    if num_qubits < 2:
        raise ValueError("tfim_trotter needs at least 2 qubits")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    qc = QuantumCircuit(num_qubits, name=f"basis_trotter_n{num_qubits}")
    half_rx = field * dt
    zz = 2.0 * coupling * dt
    for _ in range(steps):
        for q in range(num_qubits):
            qc.rx(half_rx, q)
        for q in range(num_qubits - 1):
            qc.rzz(zz, q, q + 1)
        for q in range(num_qubits):
            qc.rx(half_rx, q)
    if measure:
        qc.measure_all()
    return qc


def trotter_echo(
    num_qubits: int,
    steps: int = 2,
    dt: float = 0.15,
    coupling: float = 1.0,
    field: float = 0.7,
    measure: bool = True,
) -> QuantumCircuit:
    """GHZ prep + forward Trotter evolution + its exact reverse."""
    if num_qubits < 2:
        raise ValueError("trotter_echo needs at least 2 qubits")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    qc = QuantumCircuit(num_qubits, name=f"trotter_echo_n{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    rx_angle = 2.0 * field * dt
    zz = 2.0 * coupling * dt
    for _ in range(steps):
        for q in range(num_qubits - 1):
            qc.rzz(zz, q, q + 1)
        for q in range(num_qubits):
            qc.rx(rx_angle, q)
    for _ in range(steps):
        for q in range(num_qubits):
            qc.rx(-rx_angle, q)
        for q in reversed(range(num_qubits - 1)):
            qc.rzz(-zz, q, q + 1)
    if measure:
        qc.measure_all()
    return qc
