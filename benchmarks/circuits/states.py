"""Entangled-state preparation circuits (ghz, wstate)."""

from __future__ import annotations

import math

from repro.circuits import QuantumCircuit

__all__ = ["ghz", "wstate"]


def ghz(num_qubits: int, measure: bool = True) -> QuantumCircuit:
    """GHZ state |0...0> + |1...1> via H plus a CX ladder."""
    if num_qubits < 2:
        raise ValueError("ghz needs at least 2 qubits")
    qc = QuantumCircuit(num_qubits, name=f"ghz_n{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    if measure:
        qc.measure_all()
    return qc


def _cry(qc: QuantumCircuit, theta: float, control: int, target: int) -> None:
    # exact controlled-RY from the standard RY/CX conjugation identity
    qc.ry(theta / 2.0, target)
    qc.cx(control, target)
    qc.ry(-theta / 2.0, target)
    qc.cx(control, target)


def wstate(num_qubits: int, measure: bool = True) -> QuantumCircuit:
    """W state: equal 1/sqrt(n) weight on every one-hot basis state.

    Deterministic cascade construction: the excitation starts on qubit
    0 and each step splits off amplitude ``sqrt(1/(n-k+1))`` to stay
    behind, handing the remainder down the chain with a controlled-RY
    followed by a CX (Diker's F-gate).  All amplitudes are real and
    positive, so the statevector is exactly ``1/sqrt(n)`` one-hot.
    """
    if num_qubits < 2:
        raise ValueError("wstate needs at least 2 qubits")
    n = num_qubits
    qc = QuantumCircuit(n, name=f"wstate_n{n}")
    qc.x(0)
    for k in range(1, n):
        # excitation at k-1 carries sqrt((n-k+1)/n); keep 1/sqrt(n)
        theta = 2.0 * math.asin(math.sqrt((n - k) / (n - k + 1)))
        _cry(qc, theta, k - 1, k)
        qc.cx(k, k - 1)
    if measure:
        qc.measure_all()
    return qc
