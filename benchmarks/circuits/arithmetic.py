"""Arithmetic benchmark circuits: Toffoli, Fredkin, ripple-carry adder.

The gate library has no 3-qubit primitives, so ``ccx``/``cswap`` are
emitted in their standard Clifford+T decompositions (6 CX + 7 T for the
Toffoli).  That makes these circuits the suite's stress test for
T-staircase cancellation and CX-run cleanup.
"""

from __future__ import annotations

from repro.circuits import QuantumCircuit

__all__ = ["append_ccx", "append_cswap", "toffoli", "fredkin", "adder"]


def append_ccx(qc: QuantumCircuit, c1: int, c2: int, target: int) -> QuantumCircuit:
    """Standard 6-CX Clifford+T Toffoli decomposition (exact)."""
    qc.h(target)
    qc.cx(c2, target)
    qc.tdg(target)
    qc.cx(c1, target)
    qc.t(target)
    qc.cx(c2, target)
    qc.tdg(target)
    qc.cx(c1, target)
    qc.t(c2)
    qc.t(target)
    qc.h(target)
    qc.cx(c1, c2)
    qc.t(c1)
    qc.tdg(c2)
    qc.cx(c1, c2)
    return qc


def append_cswap(qc: QuantumCircuit, control: int, a: int, b: int) -> QuantumCircuit:
    """Fredkin gate as CX-conjugated Toffoli (exact)."""
    qc.cx(b, a)
    append_ccx(qc, control, a, b)
    qc.cx(b, a)
    return qc


def toffoli(measure: bool = True) -> QuantumCircuit:
    """3-qubit Toffoli truth-table circuit: |110> -> |111>."""
    qc = QuantumCircuit(3, name="toffoli_n3")
    qc.x(0)
    qc.x(1)
    append_ccx(qc, 0, 1, 2)
    if measure:
        qc.measure_all()
    return qc


def fredkin(measure: bool = True) -> QuantumCircuit:
    """3-qubit controlled-swap truth-table circuit: |110> -> |101>."""
    qc = QuantumCircuit(3, name="fredkin_n3")
    qc.x(0)
    qc.x(1)
    append_cswap(qc, 0, 1, 2)
    if measure:
        qc.measure_all()
    return qc


def _maj(qc: QuantumCircuit, c: int, b: int, a: int) -> None:
    qc.cx(a, b)
    qc.cx(a, c)
    append_ccx(qc, c, b, a)


def _uma(qc: QuantumCircuit, c: int, b: int, a: int) -> None:
    append_ccx(qc, c, b, a)
    qc.cx(a, c)
    qc.cx(c, b)


def adder(
    num_bits: int = 2,
    a_value: int = 1,
    b_value: int = 1,
    measure: bool = True,
) -> QuantumCircuit:
    """Cuccaro ripple-carry adder computing ``b <- a + b``.

    Layout: qubit 0 is the borrowed carry-in ancilla, qubits
    ``1 + 2i`` hold ``a_i``, qubits ``2 + 2i`` hold ``b_i``, and the
    last qubit receives the carry-out.  After the circuit the ``b``
    register reads ``(a_value + b_value) mod 2**num_bits`` with the
    overflow bit on the carry-out wire — a full classical truth table
    for equivalence checking.
    """
    if num_bits < 1:
        raise ValueError("adder needs at least 1 bit")
    n = 2 * num_bits + 2
    qc = QuantumCircuit(n, name=f"adder_n{n}")
    a_bits = [1 + 2 * i for i in range(num_bits)]
    b_bits = [2 + 2 * i for i in range(num_bits)]
    carry_in, carry_out = 0, n - 1
    for i, q in enumerate(a_bits):
        if (a_value >> i) & 1:
            qc.x(q)
    for i, q in enumerate(b_bits):
        if (b_value >> i) & 1:
            qc.x(q)
    chain = [carry_in] + a_bits
    for i in range(num_bits):
        _maj(qc, chain[i], b_bits[i], a_bits[i])
    qc.cx(a_bits[-1], carry_out)
    for i in reversed(range(num_bits)):
        _uma(qc, chain[i], b_bits[i], a_bits[i])
    if measure:
        qc.measure_all()
    return qc
