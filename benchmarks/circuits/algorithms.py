"""Algorithm benchmark circuits: QFT and Grover search."""

from __future__ import annotations

import math

from repro.circuits import QuantumCircuit

from .arithmetic import append_ccx

__all__ = ["qft", "grover"]


def qft(num_qubits: int, measure: bool = False) -> QuantumCircuit:
    """Textbook quantum Fourier transform (H + controlled-phase + swaps)."""
    if num_qubits < 1:
        raise ValueError("qft needs at least 1 qubit")
    qc = QuantumCircuit(num_qubits, name=f"qft_n{num_qubits}")
    for i in reversed(range(num_qubits)):
        qc.h(i)
        for j in reversed(range(i)):
            qc.cp(math.pi / (1 << (i - j)), j, i)
    for q in range(num_qubits // 2):
        qc.swap(q, num_qubits - 1 - q)
    if measure:
        qc.measure_all()
    return qc


def _mark_state(qc: QuantumCircuit, marked: int, num_qubits: int) -> None:
    """Phase-flip the ``marked`` computational basis state."""
    zeros = [q for q in range(num_qubits) if not (marked >> q) & 1]
    for q in zeros:
        qc.x(q)
    if num_qubits == 2:
        qc.cz(0, 1)
    else:
        # CCZ = H-conjugated Toffoli on the last qubit
        qc.h(num_qubits - 1)
        append_ccx(qc, 0, 1, num_qubits - 1)
        qc.h(num_qubits - 1)
    for q in zeros:
        qc.x(q)


def grover(
    num_qubits: int = 3,
    marked: int | None = None,
    measure: bool = True,
) -> QuantumCircuit:
    """Grover search for one marked state over 2 or 3 qubits.

    The phase oracle and the diffusion operator both bottom out in the
    (multi-)controlled-Z of the matching width, so widths beyond the
    Toffoli-backed 3 qubits are rejected rather than approximated.
    The iteration count is the standard ``floor(pi/4 * sqrt(N))``,
    which is exact for ``n = 2`` (one iteration, unit success
    probability).
    """
    if num_qubits not in (2, 3):
        raise ValueError("grover is implemented for 2 or 3 qubits")
    if marked is None:
        marked = (1 << num_qubits) - 1
    if not 0 <= marked < (1 << num_qubits):
        raise ValueError(f"marked state {marked} out of range")
    qc = QuantumCircuit(num_qubits, name=f"grover_n{num_qubits}")
    for q in range(num_qubits):
        qc.h(q)
    iterations = max(1, math.floor(math.pi / 4 * math.sqrt(1 << num_qubits)))
    for _ in range(iterations):
        _mark_state(qc, marked, num_qubits)
        # diffusion: reflect about the uniform superposition
        for q in range(num_qubits):
            qc.h(q)
        _mark_state(qc, 0, num_qubits)
        for q in range(num_qubits):
            qc.h(q)
    if measure:
        qc.measure_all()
    return qc
