"""Microbenchmarks for the execution-engine performance layer.

Times the hot paths the perf layers rebuilt — gate application,
marginalization, pulse-propagator caching, the batched sweep API, and
the trajectory-vs-density method dispatch — against the seed behaviour,
and emits ``BENCH_engine.json`` at the repo root so later PRs can track
the perf trajectory::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q -s
    # or standalone:
    PYTHONPATH=src python benchmarks/bench_engine.py
    # CI quick mode (subset, does not overwrite BENCH_engine.json):
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke

Baselines: the kernel benchmarks (gate apply, marginalize, kraus) time
inline replicas of the seed implementations.  The caching/batch
benchmarks time the live code under
:func:`repro.utils.cache.caching_disabled`, which reproduces the seed's
cache-free behaviour but still benefits from the new kernels — i.e. the
reported speedups are *lower bounds* on the true improvement over the
seed.  The trajectory benchmarks time the density-matrix back-end (the
seed's only noisy path) against the trajectory back-end on the same
circuits and seeds.

Every entry records the simulation ``method`` it exercises, and the
JSON carries a ``schema`` block so the perf trajectory stays comparable
across PRs.

The sharding layer above this engine has its own companion suite:
``benchmarks/bench_service.py`` emits ``BENCH_service.json`` with the
worker-count scaling curve and store-replay numbers (see SERVICE.md).
"""

import json
import math
import sys
import time
from pathlib import Path

# the reusable circuit generators live next to this script
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from repro.backends import (
    FakeGuadalupe,
    Target,
    execute_circuit,
    execute_circuits,
    select_method,
)
from repro.core import HybridGatePulseModel
from repro.exceptions import BackendError
from repro.noise import NoiseModel, ReadoutError
from repro.problems import MaxCutProblem, benchmark_graph
from repro.pulse.channels import DriveChannel
from repro.pulse.instructions import Play
from repro.pulse.schedule import Schedule
from repro.pulse.waveforms import Gaussian
from repro.pulsesim.calibration import calibrate_rotation
from repro.pulsesim.solver import drive_channel_propagator
from repro.circuits import QuantumCircuit
from repro.simulators.density_matrix import DensityMatrix
from repro.transpiler import CouplingMap
from repro.utils.cache import caching_disabled
from repro.utils.linalg import apply_matrix_to_qubits
from repro.utils.kernels import marginalize

#: bump when entry shapes change so downstream tooling can tell
SCHEMA = {"name": "bench_engine", "version": 6}

RESULTS: dict[str, dict] = {"schema": dict(SCHEMA)}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _best_of(fn, repeats=5, number=1):
    """Best wall-clock seconds for ``number`` calls of ``fn``."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def _record(name, seed_s, new_s, note="", method="density_matrix"):
    RESULTS[name] = {
        "seed_path_ms": round(seed_s * 1e3, 4),
        "new_path_ms": round(new_s * 1e3, 4),
        "speedup": round(seed_s / new_s, 2),
        "method": method,
        "note": note,
    }
    print(
        f"{name}: seed {seed_s * 1e3:.3f} ms -> new {new_s * 1e3:.3f} ms "
        f"({seed_s / new_s:.1f}x)"
    )
    return RESULTS[name]


def _flush():
    OUTPUT.write_text(json.dumps(RESULTS, indent=2) + "\n")


# ---------------------------------------------------------------------------
# seed-path reference implementations (inline replicas)
# ---------------------------------------------------------------------------

def _seed_apply_matrix(matrix, state, qubits, num_qubits):
    matrix = np.asarray(matrix, dtype=complex)
    k = len(qubits)
    tensor = np.asarray(state, dtype=complex).reshape([2] * num_qubits)
    axes = [num_qubits - 1 - q for q in qubits]
    order = list(reversed(axes))
    tensor = np.moveaxis(tensor, order, range(k))
    shape = tensor.shape
    tensor = matrix @ tensor.reshape(1 << k, -1)
    tensor = tensor.reshape(shape)
    tensor = np.moveaxis(tensor, range(k), order)
    return tensor.reshape(-1)


def _seed_marginalize(probs, positions, num_qubits):
    out = np.zeros(1 << len(positions))
    for index, p in enumerate(probs):
        if p == 0.0:
            continue
        key = 0
        for pos, qubit in enumerate(positions):
            key |= ((index >> qubit) & 1) << pos
        out[key] += p
    return out


def _seed_apply_kraus(dm, kraus_ops, qubits):
    """Seed DensityMatrix.apply_kraus: per-op two-sided moveaxis passes."""
    n = dm.num_qubits

    def reshaped_apply(data, matrix, side):
        k = len(qubits)
        tensor = data.reshape([2] * (2 * n))
        if side == "L":
            axes = [n - 1 - q for q in qubits]
            mat = matrix
        else:
            axes = [2 * n - 1 - q for q in qubits]
            mat = matrix.conj()
        order = list(reversed(axes))
        tensor = np.moveaxis(tensor, order, range(k))
        shape = tensor.shape
        tensor = mat @ tensor.reshape(1 << k, -1)
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), order)
        return tensor.reshape(1 << n, 1 << n)

    original = dm.data
    acc = np.zeros_like(original)
    for op in kraus_ops:
        data = reshaped_apply(original, np.asarray(op, dtype=complex), "L")
        data = reshaped_apply(data, np.asarray(op, dtype=complex), "R")
        acc = acc + data
    dm.data = acc
    return dm


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------

def test_bench_gate_apply():
    rng = np.random.default_rng(0)
    n = 10
    state = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    qubits = [2, 7]
    new = _best_of(
        lambda: apply_matrix_to_qubits(matrix, state, qubits, n), number=200
    )
    seed = _best_of(
        lambda: _seed_apply_matrix(matrix, state, qubits, n), number=200
    )
    row = _record("gate_apply_2q_10q_state", seed, new, method="statevector")
    _flush()
    assert row["speedup"] > 1.0


def test_bench_kraus_channel():
    from repro.noise.channels import thermal_relaxation_channel

    channel = thermal_relaxation_channel(90_000.0, 70_000.0, 35.5)
    rng = np.random.default_rng(1)
    n = 6
    mat = rng.normal(size=(1 << n, 1 << n)) + 1j * rng.normal(
        size=(1 << n, 1 << n)
    )
    rho = mat @ mat.conj().T
    rho /= np.trace(rho)
    dm = DensityMatrix(rho)
    new = _best_of(
        lambda: dm.apply_channel(channel, [2]), number=200
    )
    seed = _best_of(
        lambda: _seed_apply_kraus(dm, channel.kraus_ops, [2]), number=200
    )
    row = _record(
        "kraus_relaxation_6q", seed, new,
        "superoperator contraction vs per-op moveaxis passes",
    )
    _flush()
    assert row["speedup"] > 1.5


def test_bench_marginalize():
    rng = np.random.default_rng(2)
    n = 12
    probs = rng.random(1 << n)
    probs /= probs.sum()
    positions = [0, 3, 5, 8, 10, 11]
    new = _best_of(lambda: marginalize(probs, positions, n), number=50)
    seed = _best_of(
        lambda: _seed_marginalize(probs, positions, n), number=5
    )
    row = _record("marginalize_12q_to_6", seed, new, method="shared")
    _flush()
    assert row["speedup"] > 5.0


def test_bench_cached_pulse_propagator():
    backend = FakeGuadalupe()
    device = backend.device
    schedule = Schedule(name="bench")
    schedule.append(
        Play(Gaussian(320, 0.4, 80.0, angle=0.3), DriveChannel(0))
    )
    timeline = schedule.channel_timeline(DriveChannel(0))
    drive_channel_propagator(timeline, device, 1)  # warm

    def cached():
        return drive_channel_propagator(timeline, device, 1)

    def uncached():
        with caching_disabled():
            return drive_channel_propagator(timeline, device, 1)

    new = _best_of(cached, number=50)
    seed = _best_of(uncached, number=5)
    row = _record(
        "cached_pulse_propagator_320dt", seed, new,
        "cache hit vs full 320-sample SU(2) composition (seed recomputed "
        "every evaluation)",
        method="shared",
    )
    _flush()
    assert row["speedup"] >= 5.0


def test_bench_cached_calibration():
    backend = FakeGuadalupe()
    device = backend.device
    calibrate_rotation(device, 0, math.pi / 2)  # warm

    def cached():
        return calibrate_rotation(device, 0, math.pi / 2)

    def uncached():
        with caching_disabled():
            return calibrate_rotation(device, 0, math.pi / 2)

    new = _best_of(cached, number=20)
    seed = _best_of(uncached, repeats=2, number=1)
    row = _record(
        "cached_calibrate_rotation", seed, new,
        "cache hit vs full amplitude root-solve",
        method="shared",
    )
    _flush()
    assert row["speedup"] >= 5.0


def test_bench_batched_sweep():
    backend = FakeGuadalupe()
    problem = MaxCutProblem(benchmark_graph(1))
    model = HybridGatePulseModel(problem, backend.device)
    base = model.initial_point(3)
    circuits = [
        model.build_circuit(np.concatenate([[gamma], base[1:]]))
        for gamma in np.linspace(0.3, 1.5, 6)
    ]
    seeds = list(range(6))

    def batch():
        return execute_circuits(
            circuits,
            backend.target,
            noise_model=backend.noise_model,
            shots=1024,
            seeds=seeds,
            unitary_provider=backend.pulse_unitary,
        )

    def seed_loop():
        with caching_disabled():
            return [
                execute_circuit(
                    circuit,
                    backend.target,
                    noise_model=backend.noise_model,
                    shots=1024,
                    seed=s,
                    unitary_provider=backend.pulse_unitary,
                )
                for s, circuit in zip(seeds, circuits)
            ]

    batch()  # warm every cache layer
    new = _best_of(batch, repeats=5, number=1)
    seed = _best_of(seed_loop, repeats=3, number=1)
    row = _record(
        "batched_sweep_6x_hybrid_qaoa", seed, new,
        "execute_circuits warm sweep vs per-circuit cache-free loop "
        "(uncached baseline still uses the new kernels: lower bound)",
    )
    _flush()
    assert row["speedup"] >= 5.0


# ---------------------------------------------------------------------------
# simulation-method dispatch (trajectory vs density matrix)
# ---------------------------------------------------------------------------

def _noisy_sweep_circuit(n, theta):
    """A depth-4 entangling sweep point on ``n`` line qubits."""
    qc = QuantumCircuit(n, n)
    for i in range(n):
        qc.sx(i)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    for i in range(n):
        qc.rz(theta * (i + 1), i)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    for i in range(n):
        qc.measure(i, i)
    return qc


def test_bench_trajectory_vs_density_10q_sweep():
    """The headline dispatch win: a 10-qubit noisy sweep.

    The seed engine's only noisy path is the 4^n density matrix; the
    trajectory back-end samples the same noise at 2^n per trajectory.
    Same circuits, same shots, fixed seeds.
    """
    backend = FakeGuadalupe()
    circuits = [
        _noisy_sweep_circuit(10, theta)
        for theta in np.linspace(0.2, 1.0, 3)
    ]
    seeds = list(range(3))

    def density():
        return execute_circuits(
            circuits,
            backend.target,
            noise_model=backend.noise_model,
            shots=256,
            seeds=seeds,
            method="density_matrix",
        )

    def trajectory():
        return execute_circuits(
            circuits,
            backend.target,
            noise_model=backend.noise_model,
            shots=256,
            seeds=seeds,
            method="trajectory",
            trajectories=32,
        )

    new = _best_of(trajectory, repeats=3, number=1)
    seed = _best_of(density, repeats=2, number=1)
    row = _record(
        "trajectory_vs_density_10q_noisy_sweep", seed, new,
        "3-point noisy sweep on 10 line qubits, 256 shots, 32 "
        "trajectories; identical noise model and seeds",
        method="trajectory_vs_density_matrix",
    )
    _flush()
    assert row["speedup"] >= 5.0


def test_bench_trajectory_batched_vs_sequential_10q_sweep():
    _run_batched_vs_sequential(min_speedup=3.0)


def _run_batched_vs_sequential(
    min_speedup, num_qubits=10, trajectories=64, repeats=3
):
    """The batched-kernel win: one (2^n, B) stack vs the per-trajectory loop.

    Identical numerics by construction (``trajectory_batch=1`` *is* the
    sequential path through the same kernel), so counts are asserted
    byte-identical before timing — the speedup never buys a different
    answer.
    """
    backend = FakeGuadalupe()
    circuits = [
        _noisy_sweep_circuit(num_qubits, theta)
        for theta in np.linspace(0.2, 1.0, 3)
    ]
    seeds = list(range(3))

    def run(batch):
        return execute_circuits(
            circuits,
            backend.target,
            noise_model=backend.noise_model,
            shots=256,
            seeds=seeds,
            method="trajectory",
            trajectories=trajectories,
            trajectory_batch=batch,
        )

    batched_results = run(None)  # also warms every cache layer
    sequential_results = run(1)
    assert [dict(r.counts) for r in batched_results] == [
        dict(r.counts) for r in sequential_results
    ], "batched kernel diverged from the sequential path"

    new = _best_of(lambda: run(None), repeats=repeats, number=1)
    seed = _best_of(lambda: run(1), repeats=2, number=1)
    row = _record(
        f"trajectory_batched_vs_sequential_{num_qubits}q_noisy_sweep",
        seed,
        new,
        f"3-point noisy sweep, 256 shots, {trajectories} trajectories "
        "stacked into one (2^n, B) kernel vs the per-trajectory loop; "
        "counts byte-identical",
        method="trajectory",
    )
    _flush()
    assert row["speedup"] >= min_speedup, (
        f"batched trajectory kernel {row['speedup']}x < "
        f"{min_speedup}x floor over the sequential loop"
    )


def test_bench_adaptive_allocation_10q():
    """Adaptive allocation: what each target precision costs.

    Informational (no speedup assertion): records the trajectory count
    and wall clock ``trajectories="auto"`` settles at for a loose and a
    tight target, against the fixed default of 128.
    """
    backend = FakeGuadalupe()
    circuit = _noisy_sweep_circuit(10, 0.4)

    def run(trajectories, target_error=None):
        return execute_circuit(
            circuit,
            backend.target,
            backend.noise_model,
            shots=1024,
            seed=0,
            method="trajectory",
            trajectories=trajectories,
            target_error=target_error,
        )

    run(8)  # warm
    entry = {"method": "trajectory", "shots": 1024}
    t0 = time.perf_counter()
    fixed = run(128)
    entry["fixed_128_wall_ms"] = round((time.perf_counter() - t0) * 1e3, 2)
    for label, target in (("loose_0.02", 0.02), ("tight_0.005", 0.005)):
        t0 = time.perf_counter()
        result = run("auto", target)
        entry[f"auto_{label}_wall_ms"] = round(
            (time.perf_counter() - t0) * 1e3, 2
        )
        entry[f"auto_{label}_trajectories"] = result.metadata[
            "trajectories"
        ]
        entry[f"auto_{label}_achieved_error"] = round(
            result.metadata["adaptive_achieved_error"], 5
        )
    entry["note"] = (
        "trajectories='auto' stops when the estimated counts-"
        "distribution standard error meets the target; fixed 128 is "
        "the non-adaptive default"
    )
    RESULTS["adaptive_allocation_10q"] = entry
    _flush()
    print(f"adaptive_allocation_10q: {entry}")
    assert fixed.metadata["trajectories"] == 128


def test_bench_trajectory_16q_beyond_density_wall():
    _run_trajectory_16q(trajectories=16)


def _run_trajectory_16q(trajectories):
    """A 16-qubit noisy run the seed path refuses outright."""
    backend = FakeGuadalupe()
    circuit = _noisy_sweep_circuit(16, 0.4)
    refused = False
    try:
        execute_circuit(
            circuit,
            backend.target,
            backend.noise_model,
            shots=1,
            seed=0,
            method="density_matrix",
        )
    except BackendError:
        refused = True
    assert refused, "density matrix unexpectedly fit 16 qubits"

    t0 = time.perf_counter()
    result = execute_circuit(
        circuit,
        backend.target,
        backend.noise_model,
        shots=256,
        seed=0,
        method="trajectory",
        trajectories=trajectories,
    )
    wall = time.perf_counter() - t0
    assert sum(result.counts.values()) == 256
    assert result.metadata["method"] == "trajectory"
    RESULTS["trajectory_16q_beyond_density_wall"] = {
        "density_matrix_refused": refused,
        "trajectory_wall_ms": round(wall * 1e3, 2),
        "shots": 256,
        "trajectories": trajectories,
        "method": "trajectory",
        "note": "16 active qubits: past the 14-qubit density-matrix "
        "budget; trajectory runs it at 2^16 per trajectory",
    }
    _flush()
    print(
        f"trajectory_16q_beyond_density_wall: density refused, "
        f"trajectory {wall * 1e3:.1f} ms"
    )


# ---------------------------------------------------------------------------
# telemetry overhead
# ---------------------------------------------------------------------------

def test_bench_telemetry_overhead():
    """Enabled-telemetry cost on the warm hybrid-QAOA sweep.

    Bounds the telemetry layer's enabled overhead at 5% of the warm
    6-circuit sweep (the ``batched_sweep_6x`` workload).  The asserted
    number is *derived*: per-primitive costs (one enabled span, one
    persisted record — measured in tight loops, which are stable)
    multiplied by the span/record counts one traced+recorded sweep
    actually emits, over the sweep's floor wall-clock.  A direct
    off-vs-on sweep comparison is reported alongside for context but
    not asserted — the real overhead is well under 1% and container
    scheduler noise is ±10%, so a direct assertion would gate CI on a
    coin flip.  Byte-identity of the *results* is asserted separately
    in tests/test_telemetry.py; this entry keeps the observation layer
    honest about its price.
    """
    import tempfile

    from repro.telemetry import collect_trace, iter_records, set_record_sink
    from repro.telemetry.records import record as telemetry_record
    from repro.telemetry.spans import span as telemetry_span

    backend = FakeGuadalupe()
    problem = MaxCutProblem(benchmark_graph(1))
    model = HybridGatePulseModel(problem, backend.device)
    base = model.initial_point(3)
    circuits = [
        model.build_circuit(np.concatenate([[gamma], base[1:]]))
        for gamma in np.linspace(0.3, 1.5, 6)
    ]
    seeds = list(range(6))

    def sweep():
        return execute_circuits(
            circuits,
            backend.target,
            noise_model=backend.noise_model,
            shots=1024,
            seeds=seeds,
            unitary_provider=backend.pulse_unitary,
        )

    # -- per-primitive costs (tight loops: stable even on noisy boxes)
    reps = 5000

    def span_loop():
        for _ in range(reps):
            with telemetry_span("bench.overhead", a=1):
                pass

    with collect_trace("primitive-cost"):
        span_cost = _best_of(span_loop, repeats=3, number=1) / reps
    with tempfile.TemporaryDirectory() as tmp:
        set_record_sink(tmp)
        try:
            record_cost = _best_of(
                lambda: telemetry_record(
                    "execute", method="density_matrix", qubits=6,
                    depth=12, channels=3, shots=1024,
                    wall_seconds=0.004, cpu_seconds=0.004,
                ),
                repeats=3,
                number=2000,
            )
        finally:
            set_record_sink(None)

    # -- what one traced+recorded sweep actually emits
    sweep()  # warm every cache layer
    with tempfile.TemporaryDirectory() as tmp:
        set_record_sink(tmp)
        try:
            with collect_trace("bench") as trace:
                sweep()
            records = sum(
                1 for _ in iter_records(Path(tmp) / "records.jsonl")
            )
        finally:
            set_record_sink(None)
    span_count = sum(1 for _ in trace.iter_spans())

    # -- direct comparison (informational), interleaved floors
    off_s = math.inf
    on_s = math.inf
    with tempfile.TemporaryDirectory() as tmp:
        for _ in range(5):
            t0 = time.perf_counter()
            sweep()
            off_s = min(off_s, time.perf_counter() - t0)
            set_record_sink(tmp)
            try:
                t0 = time.perf_counter()
                with collect_trace("bench-direct"):
                    sweep()
                on_s = min(on_s, time.perf_counter() - t0)
            finally:
                set_record_sink(None)

    added_s = span_count * span_cost + records * record_cost
    overhead_pct = added_s / off_s * 100.0
    RESULTS["telemetry_overhead"] = {
        "telemetry_off_ms": round(off_s * 1e3, 4),
        "telemetry_on_ms": round(on_s * 1e3, 4),
        "direct_overhead_pct": round((on_s / off_s - 1.0) * 100.0, 2),
        "span_cost_us": round(span_cost * 1e6, 3),
        "record_cost_us": round(record_cost * 1e6, 3),
        "spans_per_sweep": span_count,
        "records_per_sweep": records,
        "overhead_pct": round(overhead_pct, 3),
        "method": "density_matrix",
        "note": "overhead_pct = (spans x span cost + records x record "
        "cost) / warm sweep floor; direct_overhead_pct is the raw "
        "off-vs-on sweep comparison (noise-dominated, informational); "
        "results are byte-identical either way "
        "(tests/test_telemetry.py)",
    }
    _flush()
    print(
        f"telemetry_overhead: {span_count} spans x "
        f"{span_cost * 1e6:.2f} us + {records} records x "
        f"{record_cost * 1e6:.2f} us = {added_s * 1e3:.3f} ms on a "
        f"{off_s * 1e3:.3f} ms sweep ({overhead_pct:.3f}%; direct "
        f"off {off_s * 1e3:.3f} -> on {on_s * 1e3:.3f} ms)"
    )
    assert overhead_pct <= 5.0, (
        f"enabled telemetry costs {overhead_pct:.3f}% > 5% budget on "
        "the warm sweep"
    )


def _smoke_telemetry_artifacts():
    """Write sample trace/records artifacts next to OUTPUT (CI upload).

    A small pooled traced run so the artifacts show the full span
    vocabulary — ``shard.dispatch`` grafting included — and a records
    file the ``repro.telemetry report`` CLI can digest.
    """
    from repro.telemetry import (
        collect_trace,
        set_record_sink,
        summarize_records,
        iter_records,
    )

    backend = FakeGuadalupe()
    circuits = [
        _noisy_sweep_circuit(4, theta)
        for theta in np.linspace(0.2, 1.0, 4)
    ]
    trace_path = OUTPUT.with_name("trace-sample.json")
    records_path = OUTPUT.with_name("telemetry-records.jsonl")
    records_path.unlink(missing_ok=True)
    set_record_sink(records_path)
    try:
        with collect_trace("bench-smoke") as trace:
            backend.run(circuits, shots=128, seed=0, jobs=2)
    finally:
        set_record_sink(None)
        backend.close_services()
    trace.save(trace_path)
    summary = summarize_records(iter_records(records_path))
    assert summary["total_records"] >= len(circuits)
    RESULTS["telemetry_artifacts"] = {
        "trace_path": trace_path.name,
        "records_path": records_path.name,
        "spans": sum(1 for _ in trace.iter_spans()),
        "records": summary["total_records"],
        "note": "sample artifacts for CI upload; see TELEMETRY.md",
    }
    _flush()
    print(
        f"telemetry artifacts: {trace_path.name} "
        f"({RESULTS['telemetry_artifacts']['spans']} spans), "
        f"{records_path.name} ({summary['total_records']} records)"
    )


# ---------------------------------------------------------------------------
# stabilizer back-end (registry dispatch)
# ---------------------------------------------------------------------------

def _clifford_line_circuit(n, measured):
    """An entangling Clifford layer stack on ``n`` line qubits."""
    qc = QuantumCircuit(n, measured)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    for i in range(0, n, 3):
        qc.s(i)
    for i in range(1, n, 4):
        qc.sx(i)
    for i in range(measured):
        qc.measure(i, i)
    return qc


def _pauli_noise(n):
    noise = NoiseModel(n)
    noise.add_depolarizing_error("cx", 0.02, 2)
    for name in ("h", "s", "sx"):
        noise.add_depolarizing_error(name, 0.002, 1)
    noise.set_readout_error(ReadoutError.uniform(n, 0.02))
    return noise


def test_bench_stabilizer_vs_trajectory_20q_clifford():
    _run_stabilizer_vs_trajectory(
        num_qubits=20,
        shots=4096,
        trajectories=24,
        min_speedup=10.0,
    )


def _run_stabilizer_vs_trajectory(
    num_qubits, shots, trajectories, min_speedup
):
    """The registry-dispatch win: exact tableau vs 2^n trajectories.

    A Clifford circuit with Pauli noise past every amplitude budget:
    the registry resolves ``auto`` to the stabilizer tableau
    (polynomial per shot) where the old dispatch could only offer
    ``T * 2^n`` trajectory sampling.  Counts are cross-checked within
    the cross-method TV bound before timing.
    """
    from repro.simulators import total_variation

    target = Target(num_qubits, CouplingMap.from_line(num_qubits))
    noise = _pauli_noise(num_qubits)
    circuit = _clifford_line_circuit(num_qubits, measured=6)
    resolved = select_method(circuit, target, noise)
    assert resolved == "stabilizer", (
        f"auto resolved {resolved!r}, not the tableau"
    )
    # the timed runs double as the cross-check samples — at 2^20
    # amplitudes per trajectory, nobody wants to run them twice
    latest = {}

    def stabilizer():
        latest["stabilizer"] = execute_circuit(
            circuit, target, noise, shots=shots, seed=1,
            method="stabilizer",
        )

    def trajectory():
        latest["trajectory"] = execute_circuit(
            circuit, target, noise, shots=shots, seed=2,
            method="trajectory", trajectories=trajectories,
        )

    new = _best_of(stabilizer, repeats=2, number=1)
    seed = _best_of(trajectory, repeats=1, number=1)
    tv = total_variation(
        dict(latest["stabilizer"].counts),
        dict(latest["trajectory"].counts),
    )
    assert tv < 0.15, f"TV(stabilizer, trajectory) = {tv:.4f}"
    row = _record(
        f"stabilizer_vs_trajectory_{num_qubits}q_clifford",
        seed,
        new,
        f"{num_qubits}-qubit Clifford + depolarizing/readout noise, "
        f"{shots} shots vs {trajectories} trajectories; auto resolves "
        f"to stabilizer; counts agree within TV {tv:.3f}",
        method="stabilizer_vs_trajectory",
    )
    _flush()
    assert row["speedup"] >= min_speedup, (
        f"stabilizer tableau {row['speedup']}x < {min_speedup}x floor "
        f"over trajectory sampling at {num_qubits} qubits"
    )


def test_bench_stabilizer_packed_vs_pershot_100q_qec():
    _run_stabilizer_packed_vs_pershot(
        distance=51,  # 101 qubits, 50 measured ancillas
        shots=4096,
        min_speedup=10.0,
        name="stabilizer_packed_vs_pershot_100q_qec",
        check_service=True,
    )


def _run_stabilizer_packed_vs_pershot(
    distance, shots, min_speedup, name, check_service=False
):
    """The packed-kernel win: batched shot replay vs the per-shot loop.

    A distance-``d`` repetition-code syndrome-extraction circuit (see
    ``benchmarks/circuits/qec.py``) with Pauli + readout noise runs on
    the stabilizer tableau twice: ``stabilizer_shot_batch=1`` replays
    the compiled trace one shot at a time (the sequential reference,
    i.e. the pre-packed-kernel cost shape) and the default batch
    vectorises all shots through one ``(S, 2n)`` phase matrix.  The
    kernel is a perf change, not a sampling change, so counts must be
    *byte-identical* across batch sizes — and, with ``check_service``,
    across a ``jobs=2`` sharded-service run — before anything is timed.
    """
    from circuits.qec import repetition_syndrome_circuit

    circuit = repetition_syndrome_circuit(distance)
    n = circuit.num_qubits
    target = Target(n, CouplingMap.from_line(n))
    noise = _pauli_noise(n)
    resolved = select_method(circuit, target, noise)
    assert resolved == "stabilizer", (
        f"auto resolved {resolved!r}, not the tableau"
    )
    latest = {}

    def packed():
        latest["packed"] = execute_circuit(
            circuit, target, noise, shots=shots, seed=1,
            method="stabilizer",
        )

    def pershot():
        latest["pershot"] = execute_circuit(
            circuit, target, noise, shots=shots, seed=1,
            method="stabilizer", stabilizer_shot_batch=1,
        )

    packed()
    pershot()
    assert dict(latest["packed"].counts) == dict(latest["pershot"].counts), (
        "batch=1 and batch=S stabilizer counts diverged"
    )
    if check_service:
        counts = _stabilizer_service_counts(
            circuit, target, noise, shots=shots, jobs=2
        )
        assert counts == dict(latest["packed"].counts), (
            "jobs=2 sharded-service counts diverged from direct execution"
        )
    new = _best_of(packed, repeats=3, number=1)
    seed = _best_of(pershot, repeats=1, number=1)
    row = _record(
        name,
        seed,
        new,
        f"distance-{distance} repetition-code syndrome extraction "
        f"({n} qubits, {circuit.num_clbits} measured ancillas) + "
        f"Pauli/readout noise, {shots} shots; shot_batch=1 sequential "
        f"replay vs packed batch kernel; counts byte-identical"
        + (" incl. jobs=2 service run" if check_service else ""),
        method="stabilizer",
    )
    _flush()
    assert row["speedup"] >= min_speedup, (
        f"packed stabilizer kernel {row['speedup']}x < {min_speedup}x "
        f"floor over per-shot replay at {n} qubits"
    )


def _stabilizer_service_counts(circuit, target, noise, shots, jobs):
    """Counts for ``circuit`` run through a ``jobs``-worker service.

    Builds a throwaway line backend around the bench target/noise
    (stabilizer jobs shard whole — only the trajectory method fans out
    into slices — so two copies of the circuit exercise the sharding
    path) and returns the first copy's counts.
    """
    from repro.backends.backend import SimulatedBackend
    from repro.hamiltonian.system import DeviceModel

    device = DeviceModel.uniform(
        target.num_qubits, coupling_map=target.coupling.edges
    )
    backend = SimulatedBackend("bench_qec_line", target, noise, device)
    try:
        result = backend.run(
            [circuit, circuit],
            shots=shots,
            seeds=[1, 1],
            jobs=jobs,
            method="stabilizer",
        )
        first, second = (dict(e.counts) for e in result.experiments)
        assert first == second
        return first
    finally:
        backend.close_services()


def _smoke_registry_dispatch():
    """Quick-mode coverage of registry dispatch (no speedup floor).

    Asserts the auto policy's decisions across the methods' home turfs
    and that a 16-qubit Clifford+Pauli run lands on the tableau and
    returns well-formed counts; small enough for CI containers.
    """
    backend = FakeGuadalupe()
    noiseless = _clifford_line_circuit(10, measured=10)
    assert select_method(noiseless, backend.target, None) == "statevector"
    assert (
        select_method(noiseless, backend.target, backend.noise_model)
        == "density_matrix"
    )
    big_noisy = _noisy_sweep_circuit(16, 0.4)
    assert (
        select_method(big_noisy, backend.target, backend.noise_model)
        == "trajectory"
    )
    target = Target(16, CouplingMap.from_line(16))
    noise = _pauli_noise(16)
    clifford = _clifford_line_circuit(16, measured=6)
    assert select_method(clifford, target, noise) == "stabilizer"
    t0 = time.perf_counter()
    result = execute_circuit(clifford, target, noise, shots=256, seed=1)
    wall = time.perf_counter() - t0
    assert result.metadata["method"] == "stabilizer"
    assert sum(result.counts.values()) == 256
    RESULTS["registry_dispatch_smoke"] = {
        "method": "stabilizer",
        "stabilizer_16q_wall_ms": round(wall * 1e3, 2),
        "note": "auto-dispatch decisions asserted per method; 16q "
        "Clifford+Pauli executes on the tableau",
    }
    _flush()
    print(f"registry_dispatch_smoke: stabilizer 16q {wall * 1e3:.1f} ms")


def main(argv=None):
    import argparse

    global OUTPUT
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI quick mode: kernel + dispatch subset with relaxed "
        "budgets; writes to a scratch file instead of BENCH_engine.json",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="override the result path (smoke mode defaults to a "
        "temp-dir scratch file so partial runs never clobber the "
        "tracked BENCH_engine.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        import tempfile

        # a partial run must never clobber the tracked perf trajectory
        OUTPUT = args.output or (
            Path(tempfile.gettempdir()) / "BENCH_engine.smoke.json"
        )
        test_bench_gate_apply()
        test_bench_kraus_channel()
        test_bench_marginalize()
        _run_trajectory_16q(trajectories=4)
        _smoke_registry_dispatch()
        # relaxed floor: CI containers are slow/noisy, the tracked 3x
        # assertion runs in the full mode
        _run_batched_vs_sequential(
            min_speedup=1.5, trajectories=32, repeats=2
        )
        # relaxed floor + small code for the same reason; the tracked
        # 10x assertion at 101 qubits runs in the full mode
        _run_stabilizer_packed_vs_pershot(
            distance=13, shots=512, min_speedup=1.5,
            name="stabilizer_packed_vs_pershot_smoke",
        )
        test_bench_telemetry_overhead()
        _smoke_telemetry_artifacts()
        print(f"smoke ok; scratch results in {OUTPUT}")
        return
    if args.output is not None:
        OUTPUT = args.output
    test_bench_gate_apply()
    test_bench_kraus_channel()
    test_bench_marginalize()
    test_bench_cached_pulse_propagator()
    test_bench_cached_calibration()
    test_bench_batched_sweep()
    test_bench_trajectory_vs_density_10q_sweep()
    test_bench_trajectory_batched_vs_sequential_10q_sweep()
    test_bench_adaptive_allocation_10q()
    test_bench_trajectory_16q_beyond_density_wall()
    test_bench_stabilizer_vs_trajectory_20q_clifford()
    test_bench_stabilizer_packed_vs_pershot_100q_qec()
    test_bench_telemetry_overhead()
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
