"""Benchmark: regenerate Table II (gate vs hybrid across backends).

Quick mode trains with few iterations, so absolute ARs sit below the
full-budget numbers; the assertions check only the cheap invariants (the
full shape checks are exercised by the default-budget experiment run
recorded in EXPERIMENTS.md).
"""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, quick_config):
    result = run_once(benchmark, table2.run, quick_config)
    print()
    print(table2.render(result))
    # every AR is a sane ratio and every PO search terminated on the
    # 32 dt grid strictly below the raw duration
    for key, ar in result.ars.items():
        assert 0.0 <= ar <= 1.0, key
    for backend, duration in result.po_durations.items():
        assert duration % 32 == 0
        assert duration < 320
