"""Benchmark: regenerate Fig. 5 (pulse vs hybrid + duration reduction)."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5(benchmark, quick_config):
    result = run_once(benchmark, fig5.run, quick_config)
    print()
    print(fig5.render(result))
    assert result.hybrid_duration == 320
    assert result.hybrid_po_duration % 32 == 0
    assert result.hybrid_po_duration < result.hybrid_duration
    assert 0.0 <= result.pulse_ar <= 1.0
