"""Benchmark: the §V-B convergence comparison (gate/hybrid/pulse)."""

from conftest import run_once

from repro.experiments import convergence


def test_convergence(benchmark, quick_config):
    result = run_once(benchmark, convergence.run, quick_config)
    print()
    print(convergence.render(result))
    assert set(result.best_ar) == {"gate", "hybrid", "pulse"}
    for series in result.best_so_far.values():
        # best-so-far is monotone
        assert all(b >= a for a, b in zip(series, series[1:]))
