"""Transpiler optimization-tier benchmark over the standard circuit suite.

Runs every circuit in ``benchmarks/circuits`` (the snippet-2 named
family: ghz, wstate, adder, toffoli, fredkin, grover, qft,
basis_trotter, trotter_echo, qec) through the preset pass pipelines and
reports, per circuit x pipeline::

    Circuit name: wstate_n5
    Size - original: 21, optimized: 17 (0.81)
    Depth - original: 13, optimized: 11 (0.85)
    Number of non-local gates - original: 8, optimized: 8 (1.00)

Every optimized circuit is *gated* through an equivalence check against
its original (exact unitary with layout-permutation accounting for
small widths, fixed-seed engine counts for wide ones) before any ratio
is recorded — an inequivalent result aborts the bench.  The report also
records which simulation method ``select_method`` picks for original
vs optimized under ``auto`` — both noiselessly and under a reference
Pauli + readout noise model (the stabilizer back-end's domain) —
surfacing circuits that Clifford-block extraction newly routes to the
stabilizer method.

Usage::

    PYTHONPATH=src python benchmarks/bench_transpiler.py
    # CI quick mode (subset; writes to a scratch file):
    PYTHONPATH=src python benchmarks/bench_transpiler.py --smoke

Emits ``BENCH_transpiler.json`` at the repo root.
"""

import json
import sys
import time
from pathlib import Path

# the reusable circuit generators live next to this script
sys.path.insert(0, str(Path(__file__).resolve().parent))

from circuits import SUITE

from repro.backends import Target, select_method
from repro.noise import NoiseModel, ReadoutError
from repro.transpiler import CouplingMap, transpile, verify_transpiled

#: bump when entry shapes change so downstream tooling can tell
SCHEMA = {"name": "bench_transpiler", "version": 1}

RESULTS: dict[str, dict] = {"schema": dict(SCHEMA)}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_transpiler.json"

#: pipeline label -> preset optimization level
PIPELINES = {"baseline_l1": 1, "optimized_l2": 2, "optimized_l3": 3}

#: circuits too wide for exact-unitary checking use fixed-seed counts
COUNTS_SHOTS = 2048
COUNTS_SEED = 1234


def _reference_noise(num_qubits: int) -> NoiseModel:
    """Pauli + readout noise (the stabilizer method's domain)."""
    noise = NoiseModel(num_qubits)
    noise.add_depolarizing_error("cx", 0.02, 2)
    for name in ("h", "s", "sx", "x"):
        noise.add_depolarizing_error(name, 0.002, 1)
    noise.set_readout_error(ReadoutError.uniform(num_qubits, 0.02))
    return noise


def _ratio(original: int, optimized: int) -> float:
    return round(optimized / original, 2) if original else 1.0


def _metrics(circuit) -> dict:
    return {
        "size": circuit.size(),
        "depth": circuit.depth(),
        "non_local_gates": circuit.num_two_qubit_gates(),
    }


def _bench_circuit(name: str, factory, levels: dict[str, int]) -> dict:
    circuit = factory()
    coupling = CouplingMap.from_line(circuit.num_qubits)
    target = Target(circuit.num_qubits, coupling)
    noise = _reference_noise(circuit.num_qubits)
    original = _metrics(circuit)
    entry = {
        "num_qubits": circuit.num_qubits,
        "original": original,
        "method_original": select_method(circuit, target),
        "method_original_noisy": select_method(circuit, target, noise),
        "pipelines": {},
    }
    for label, level in levels.items():
        fresh = factory()
        t0 = time.perf_counter()
        optimized = transpile(
            fresh, coupling, optimization_level=level, seed=7
        )
        wall = time.perf_counter() - t0
        verdict = verify_transpiled(
            fresh, optimized, shots=COUNTS_SHOTS, seed=COUNTS_SEED
        )
        if not verdict["equivalent"]:
            raise AssertionError(
                f"{name} @ {label}: optimized circuit is NOT equivalent "
                f"to the original ({verdict['method']} check)"
            )
        after = _metrics(optimized)
        entry["pipelines"][label] = {
            "optimization_level": level,
            **after,
            "size_ratio": _ratio(original["size"], after["size"]),
            "depth_ratio": _ratio(original["depth"], after["depth"]),
            "non_local_ratio": _ratio(
                original["non_local_gates"], after["non_local_gates"]
            ),
            "transpile_ms": round(wall * 1e3, 2),
            "equivalence": verdict["method"],
            "method_optimized": select_method(optimized, target),
            "method_optimized_noisy": select_method(optimized, target, noise),
            "clifford_blocks": optimized.metadata.get("clifford_blocks"),
        }
    newly_stabilizer = any(
        (
            p["method_optimized"] == "stabilizer"
            and entry["method_original"] != "stabilizer"
        )
        or (
            p["method_optimized_noisy"] == "stabilizer"
            and entry["method_original_noisy"] != "stabilizer"
        )
        for p in entry["pipelines"].values()
    )
    entry["newly_routes_to_stabilizer"] = newly_stabilizer
    RESULTS[name] = entry
    _print_entry(name, entry)
    return entry


def _print_entry(name: str, entry: dict) -> None:
    orig = entry["original"]
    print(f"Circuit name: {name}")
    for label, p in entry["pipelines"].items():
        print(
            f"  [{label}] Size - original: {orig['size']}, "
            f"optimized: {p['size']} ({p['size_ratio']})"
        )
        print(
            f"  [{label}] Depth - original: {orig['depth']}, "
            f"optimized: {p['depth']} ({p['depth_ratio']})"
        )
        print(
            f"  [{label}] Number of non-local gates - original: "
            f"{orig['non_local_gates']}, optimized: "
            f"{p['non_local_gates']} ({p['non_local_ratio']})"
        )
        print(
            f"  [{label}] equivalence: {p['equivalence']}; method: "
            f"{entry['method_original']} -> {p['method_optimized']} "
            f"(noisy: {entry['method_original_noisy']} -> "
            f"{p['method_optimized_noisy']})"
        )


def _flush():
    OUTPUT.write_text(json.dumps(RESULTS, indent=2) + "\n")


def run_suite(names=None, levels=None):
    names = list(SUITE) if names is None else names
    levels = PIPELINES if levels is None else levels
    for name in names:
        _bench_circuit(name, SUITE[name], levels)
    routed = [
        name
        for name, entry in RESULTS.items()
        if name != "schema" and entry["newly_routes_to_stabilizer"]
    ]
    RESULTS["schema"]["newly_routed_to_stabilizer"] = routed
    _flush()
    print(f"newly routed to stabilizer under auto: {routed or 'none'}")
    assert routed, (
        "expected at least one suite circuit to newly route to the "
        "stabilizer method after Clifford-block extraction"
    )


def test_bench_transpiler_suite():
    run_suite()


def main(argv=None):
    import argparse

    global OUTPUT
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI quick mode: two pipelines over a suite subset; writes "
        "to a scratch file instead of BENCH_transpiler.json unless "
        "--output is given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="override the result path (smoke mode defaults to a "
        "temp-dir scratch file so partial runs never clobber the "
        "tracked BENCH_transpiler.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        import tempfile

        OUTPUT = args.output or (
            Path(tempfile.gettempdir()) / "BENCH_transpiler.smoke.json"
        )
        run_suite(
            names=[
                "ghz_n8",
                "wstate_n5",
                "toffoli_n3",
                "qft_n5",
                "basis_trotter_n6",
                "trotter_echo_n20",
            ],
            levels={"baseline_l1": 1, "optimized_l2": 2},
        )
        print(f"smoke ok; results in {OUTPUT}")
        return
    if args.output is not None:
        OUTPUT = args.output
    run_suite()


if __name__ == "__main__":
    main()
