"""Shared fixtures for the benchmark suite.

Every paper table/figure has a ``bench_*`` module here.  Benchmarks run
the experiment drivers in ``quick`` mode (reduced optimizer iterations
and shots) so the whole suite finishes in minutes; the paper-faithful
numbers in EXPERIMENTS.md come from ``python -m repro.experiments <name>``
with default settings.
"""

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig(quick=True)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
