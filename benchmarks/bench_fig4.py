"""Benchmark: regenerate Fig. 4 (benchmark graphs and optima)."""

from conftest import run_once

from repro.experiments import fig4


def test_fig4(benchmark, quick_config):
    result = run_once(benchmark, fig4.run, quick_config)
    print()
    print(fig4.render(result))
    for task, row in result.items():
        assert row["max_cut"] == row["paper_max_cut"]
