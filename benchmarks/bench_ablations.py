"""Ablation benches for the design choices DESIGN.md calls out.

* pulse-efficient RZZ vs CX-CX RZZ — duration and single-shot AR;
* shared vs per-qubit mixer parameterisation — parameter count vs AR
  after a fixed optimizer budget;
* M3 solver choice — direct LU vs matrix-free GMRES.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.backends import FakeToronto
from repro.core import (
    ExecutionPipeline,
    GateLevelModel,
    HybridGatePulseModel,
    train_model,
)
from repro.mitigation import M3Mitigator
from repro.noise import ReadoutError
from repro.problems import MaxCutProblem, three_regular_6
from repro.vqa import ExpectedCutCost
from repro.vqa.optimizers import COBYLA


@pytest.fixture(scope="module")
def backend():
    return FakeToronto()


@pytest.fixture(scope="module")
def problem():
    return MaxCutProblem(three_regular_6())


def test_pulse_efficient_rzz_ablation(benchmark, backend, problem):
    """Scaled-CR RZZ vs the CX-CX decomposition at fixed parameters."""
    model = GateLevelModel(problem)
    circuit = model.build_circuit([0.7, 0.35])

    def compare():
        out = {}
        for pulse_efficient in (False, True):
            pipeline = ExecutionPipeline(
                backend=backend,
                cost=ExpectedCutCost(problem),
                shots=1024,
                pulse_efficient=pulse_efficient,
            )
            value, info = pipeline.evaluate(circuit, seed=21)
            key = "pulse_efficient" if pulse_efficient else "cx_cx"
            out[key] = {"ar": value / 9.0, "duration": info["duration"]}
        return out

    result = run_once(benchmark, compare)
    print()
    for key, row in result.items():
        print(
            f"  {key:>15}: AR {row['ar']:.3f}, "
            f"duration {row['duration']} dt"
        )
    assert (
        result["pulse_efficient"]["duration"] < result["cx_cx"]["duration"]
    ), "scaled CR must be shorter than two CX gates"


def test_mixer_parameterisation_ablation(benchmark, backend, problem):
    """Shared (1+3 params) vs per-qubit (1+3n) mixer blocks."""

    def compare():
        pipeline = ExecutionPipeline(
            backend=backend, cost=ExpectedCutCost(problem), shots=512
        )
        out = {}
        for shared in (True, False):
            model = HybridGatePulseModel(
                problem, backend.device, share_mixer_params=shared
            )
            train = train_model(
                model, pipeline, COBYLA(maxiter=10), seed=31
            )
            key = "shared" if shared else "per_qubit"
            out[key] = {
                "params": model.num_parameters,
                "ar": train.best_value / 9.0,
            }
        return out

    result = run_once(benchmark, compare)
    print()
    for key, row in result.items():
        print(f"  {key:>9}: {row['params']} params, AR {row['ar']:.3f}")
    assert result["shared"]["params"] < result["per_qubit"]["params"]


def test_m3_direct_vs_iterative(benchmark):
    """Matrix-free GMRES matches the dense LU solve."""
    readout = ReadoutError.asymmetric(6, p01=0.05, p10=0.02)
    rng = np.random.default_rng(2)
    keys = {format(int(i), "06b") for i in rng.integers(0, 64, 30)}
    counts = {k: int(rng.integers(10, 500)) for k in keys}
    mitigator = M3Mitigator(readout)

    direct = mitigator.apply(counts, method="direct")
    iterative = benchmark(mitigator.apply, counts)
    for key in direct:
        assert direct[key] == pytest.approx(iterative[key], abs=1e-6)


def test_dd_ablation(benchmark, backend, problem):
    """Dynamical decoupling on idle windows: duration overhead is zero."""
    from repro.transpiler import DynamicalDecoupling, circuit_duration, transpile

    model = GateLevelModel(problem)
    circuit = model.build_circuit([0.7, 0.35])
    routed = transpile(
        circuit,
        backend.coupling,
        initial_layout=[0, 1, 4, 7, 10, 12],
        seed=3,
    )
    durations = backend.target.duration_provider()
    dd = DynamicalDecoupling(durations, min_window=640)

    decoupled = run_once(benchmark, dd, routed)
    base_duration = circuit_duration(routed, durations)
    dd_duration = circuit_duration(decoupled, durations)
    extra_x = decoupled.count_ops().get("x", 0) - routed.count_ops().get(
        "x", 0
    )
    print(
        f"\n  inserted {extra_x} DD pulses; duration {base_duration} -> "
        f"{dd_duration} dt"
    )
    assert extra_x >= 0 and extra_x % 2 == 0
    assert dd_duration <= base_duration + 1  # fills idle windows only
