"""Benchmarks for the sharded execution service.

Times the fig4 quick sweep (a gamma sweep of hybrid-QAOA circuits over
the paper's three benchmark graphs) through
:class:`~repro.service.futures.ExecutionService` at 1/2/4 workers, plus
the content-addressed store's replay path, and emits
``BENCH_service.json`` at the repo root next to ``BENCH_engine.json``::

    PYTHONPATH=src python benchmarks/bench_service.py
    # or under pytest:
    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s

Honesty notes recorded in the JSON: worker scaling is bounded by the
machine — the ``>= 2x at 4 workers`` assertion only applies when at
least 4 CPUs are actually available (``environment.cpu_count``); on
smaller machines the curve is still recorded so multi-core CI tracks
the trajectory.  Counts are asserted byte-identical across all worker
counts on every run, everywhere — and, for the cost-aware scheduler
benchmark, byte-identical between ``shard_planner="cost"`` and
``"count"`` too: planning may only move wall-clock, never results.
"""

import json
import math
import os
import pickle
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.backends import FakeGuadalupe
from repro.circuits import QuantumCircuit
from repro.core import ExecutionPipeline, HybridGatePulseModel
from repro.problems import MaxCutProblem, benchmark_graph
from repro.service import (
    CircuitJob,
    ExecutionService,
    FaultPolicy,
    FaultRule,
    ResultStore,
    SweepJob,
)
from repro.telemetry import set_record_sink
from repro.vqa import ExpectedCutCost

#: bump when entry shapes change so downstream tooling can tell
#: (v4 adds cost_aware_vs_count_heterogeneous)
SCHEMA = {"name": "bench_service", "version": 4}

RESULTS: dict = {"schema": dict(SCHEMA)}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

SHOTS = 256
POINTS_PER_TASK = 8
SWEEP_SEED = 2023


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _best_of(fn, repeats=3):
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _flush():
    RESULTS["environment"] = {
        "cpu_count": _cpu_count(),
        "sweep_circuits": 3 * POINTS_PER_TASK,
        "shots": SHOTS,
    }
    OUTPUT.write_text(json.dumps(RESULTS, indent=2) + "\n")


def fig4_quick_sweep(backend):
    """The fig4 quick sweep: gamma sweeps on the three benchmark graphs."""
    circuits = []
    for task in (1, 2, 3):
        problem = MaxCutProblem(benchmark_graph(task))
        model = HybridGatePulseModel(problem, backend.device)
        base = model.initial_point(task)
        pipeline = ExecutionPipeline(
            backend=backend,
            cost=ExpectedCutCost(problem),
            shots=SHOTS,
        )
        circuits.extend(
            pipeline.prepare(
                model.build_circuit(np.concatenate([[gamma], base[1:]]))
            )
            for gamma in np.linspace(0.3, 1.5, POINTS_PER_TASK)
        )
    return circuits


def test_bench_worker_scaling():
    """1/2/4-worker wall-clock curve on the fig4 quick sweep."""
    backend = FakeGuadalupe()
    sweep = SweepJob(
        fig4_quick_sweep(backend), shots=SHOTS, seed=SWEEP_SEED
    )
    cpus = _cpu_count()
    reference = None
    curve: dict[str, dict] = {}
    for workers in (1, 2, 4):
        service = ExecutionService(backend, jobs=workers)
        try:
            service.map(sweep)  # warm pool, caches and propagators
            seconds, results = _best_of(lambda: service.map(sweep))
        finally:
            service.shutdown()
        counts = [dict(r.counts) for r in results]
        if reference is None:
            reference = counts
            base_seconds = seconds
        else:
            assert counts == reference, (
                f"{workers}-worker counts diverged from 1-worker"
            )
        curve[str(workers)] = {
            "wall_ms": round(seconds * 1e3, 2),
            "speedup_vs_1worker": round(base_seconds / seconds, 2),
        }
        print(
            f"service fig4 quick sweep, {workers} workers: "
            f"{seconds * 1e3:.1f} ms "
            f"({base_seconds / seconds:.2f}x vs 1 worker)"
        )
    RESULTS["worker_scaling_fig4_quick_sweep"] = {
        **curve,
        "method": "auto (resolves to density_matrix)",
        "note": (
            "same seeds, byte-identical counts at every worker count; "
            "speedup ceiling is min(workers, cpu_count)"
        ),
    }
    _flush()
    speedup4 = curve["4"]["speedup_vs_1worker"]
    if cpus >= 4:
        assert speedup4 >= 2.0, (
            f"expected >=2x at 4 workers on a {cpus}-CPU machine, "
            f"got {speedup4}x"
        )
    elif cpus >= 2:
        assert curve["2"]["speedup_vs_1worker"] >= 1.3
    else:
        print(
            f"(single-CPU machine: scaling assertion skipped, "
            f"curve recorded for multi-core CI)"
        )


def test_bench_store_replay(tmp_path=None):
    """Cold sweep vs content-addressed store replay."""
    import tempfile

    backend = FakeGuadalupe()
    sweep = SweepJob(
        fig4_quick_sweep(backend), shots=SHOTS, seed=SWEEP_SEED
    )
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        with ExecutionService(backend, jobs=1, store=store) as service:
            t0 = time.perf_counter()
            cold = service.map(sweep)
            cold_seconds = time.perf_counter() - t0
            replay_seconds, warm = _best_of(lambda: service.map(sweep))
        assert [dict(r.counts) for r in cold] == [
            dict(r.counts) for r in warm
        ]
        assert store.hits >= len(sweep)
    speedup = cold_seconds / replay_seconds
    RESULTS["store_replay_fig4_quick_sweep"] = {
        "cold_ms": round(cold_seconds * 1e3, 2),
        "replay_ms": round(replay_seconds * 1e3, 2),
        "speedup": round(speedup, 2),
        "method": "auto (resolves to density_matrix)",
        "note": "repeated deterministic sweeps served from disk",
    }
    _flush()
    print(
        f"store replay: cold {cold_seconds * 1e3:.1f} ms -> "
        f"{replay_seconds * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 2.0


def test_bench_trajectory_fanout():
    """A single 12-qubit trajectory job fanned out as slice sub-jobs.

    Counts are asserted byte-identical between ``jobs=1`` and
    ``jobs=4`` on every machine; the wall-clock curve is recorded so
    multi-core CI tracks the fan-out speedup (bounded by cpu_count,
    like the worker-scaling benchmark).
    """
    n = 12
    trajectories = 32
    circuit = QuantumCircuit(n, n)
    circuit.h(0)
    for i in range(n - 1):
        circuit.cx(i, i + 1)
    for i in range(n):
        circuit.measure(i, i)

    inline_backend = FakeGuadalupe()
    inline_seconds, inline_result = _best_of(
        lambda: inline_backend.run(
            circuit, shots=SHOTS, seed=SWEEP_SEED,
            method="trajectory", trajectories=trajectories,
        )
    )
    fanout_backend = FakeGuadalupe()
    try:
        fanout_backend.run(  # warm the pool
            circuit, shots=SHOTS, seed=SWEEP_SEED,
            method="trajectory", trajectories=trajectories, jobs=4,
        )
        fanout_seconds, fanout_result = _best_of(
            lambda: fanout_backend.run(
                circuit, shots=SHOTS, seed=SWEEP_SEED,
                method="trajectory", trajectories=trajectories, jobs=4,
            )
        )
    finally:
        fanout_backend.close_services()
    assert dict(fanout_result.get_counts()) == dict(
        inline_result.get_counts()
    ), "trajectory fan-out counts diverged from jobs=1"
    subjobs = fanout_result.metadata["service"]["trajectory_subjobs"]
    assert subjobs >= 2
    RESULTS["trajectory_fanout_12q"] = {
        "jobs1_wall_ms": round(inline_seconds * 1e3, 2),
        "jobs4_wall_ms": round(fanout_seconds * 1e3, 2),
        "speedup_vs_jobs1": round(inline_seconds / fanout_seconds, 2),
        "trajectory_subjobs": subjobs,
        "trajectories": trajectories,
        "method": "trajectory",
        "note": (
            "single 12-qubit noisy circuit split into trajectory-slice "
            "sub-jobs; byte-identical counts at any worker count, "
            "speedup ceiling is min(workers, cpu_count)"
        ),
    }
    _flush()
    print(
        f"trajectory fan-out 12q: jobs=1 {inline_seconds * 1e3:.1f} ms "
        f"-> jobs=4 {fanout_seconds * 1e3:.1f} ms "
        f"({inline_seconds / fanout_seconds:.2f}x, {subjobs} sub-jobs)"
    )


def test_bench_fault_recovery():
    """Recovery overhead: a worker SIGKILLed mid-batch vs a clean run.

    A deterministic kill fault takes one worker down on the batch's
    first shard attempt; the service rebuilds the pool and resubmits
    the lost shards.  Counts are asserted byte-identical to the clean
    run — recovery must be silent with respect to results — and the
    wall-clock overhead of the rebuild + resubmission is recorded.
    """
    backend = FakeGuadalupe()
    sweep = SweepJob(
        fig4_quick_sweep(backend), shots=SHOTS, seed=SWEEP_SEED
    )
    jobs = sweep.jobs()
    with ExecutionService(backend, jobs=2) as service:
        service.run_jobs(jobs)  # warm pool, caches and propagators
        clean_seconds, (clean, _) = _best_of(
            lambda: service.run_jobs(jobs)
        )
    # rate<1 with max_attempts=1: some first attempts die mid-shard,
    # the retried attempts run clean — one deterministic chaos episode
    policy = FaultPolicy(
        rules=(FaultRule("kill", rate=0.25, max_attempts=1),),
        seed=SWEEP_SEED,
    )
    with ExecutionService(
        backend, jobs=2, fault_policy=policy, retry_backoff=0.01
    ) as service:
        faulty_seconds, (recovered, meta) = _best_of(
            lambda: service.run_jobs(jobs)
        )
    assert [dict(r.counts) for r in recovered] == [
        dict(r.counts) for r in clean
    ], "recovered counts diverged from the clean run"
    assert meta["faults"]["pool_rebuilds"] >= 1
    overhead = faulty_seconds / clean_seconds
    RESULTS["fault_recovery_fig4_quick_sweep"] = {
        "clean_ms": round(clean_seconds * 1e3, 2),
        "recovered_ms": round(faulty_seconds * 1e3, 2),
        "overhead_factor": round(overhead, 2),
        "pool_rebuilds": meta["faults"]["pool_rebuilds"],
        "retries": meta["faults"]["retries"],
        "note": (
            "deterministic kill fault (rate=0.25, first attempts) on a "
            "2-worker batch; byte-identical counts after pool rebuild "
            "and shard resubmission"
        ),
    }
    _flush()
    print(
        f"fault recovery: clean {clean_seconds * 1e3:.1f} ms -> "
        f"killed-worker {faulty_seconds * 1e3:.1f} ms "
        f"({overhead:.2f}x, {meta['faults']['pool_rebuilds']} rebuilds)"
    )


def _ghz(qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(qubits, qubits)
    circuit.h(0)
    for qubit in range(qubits - 1):
        circuit.cx(qubit, qubit + 1)
    for qubit in range(qubits):
        circuit.measure(qubit, qubit)
    return circuit


def _heterogeneous_jobs(smoke: bool = False) -> tuple[list, dict]:
    """A mixed-method batch ordered cheap-first, heavy-last.

    That ordering is the count planner's worst case: an even split
    strands both heavy density sweeps in the final shard, where one
    worker grinds them back-to-back while the rest sit idle.  The cost
    planner isolates them and dispatches them first.
    """
    cheap = 6 if smoke else 12
    heavy_qubits = 7 if smoke else 8
    jobs: list[CircuitJob] = []
    for index in range(cheap):
        jobs.append(
            CircuitJob(
                circuit=_ghz(4),
                shots=SHOTS,
                seed=100 + index,
                method="stabilizer",
                with_noise=False,
            )
        )
    for index in range(2):
        jobs.append(
            CircuitJob(
                circuit=_ghz(heavy_qubits),
                shots=SHOTS,
                seed=200 + index,
                method="trajectory",
                trajectories=8,
            )
        )
    for index in range(2):
        jobs.append(
            CircuitJob(
                circuit=_ghz(heavy_qubits),
                shots=SHOTS,
                seed=300 + index,
                method="density_matrix",
            )
        )
    mix = {
        "stabilizer": cheap,
        "trajectory": 2,
        "density_matrix": 2,
    }
    return jobs, mix


def test_bench_cost_aware_vs_count_heterogeneous(smoke: bool = False):
    """Cost-aware vs count-based shard planning on a mixed-method batch.

    The full calibration workflow: a recording warm-up run accumulates
    ``execute`` records, the cost-planner service's constructor
    auto-refreshes a :class:`CostCalibration` from them (the shipped
    unitless weights deliberately overprice per-shot stabilizer work,
    so real per-method seconds are what make the plan right), and the
    same batch is then timed under both planners.  Results are asserted
    byte-identical between planners and vs ``jobs=1`` on every machine;
    the ``>= 1.3x`` speedup assertion needs at least 2 real CPUs.
    """
    backend = FakeGuadalupe()
    jobs, mix = _heterogeneous_jobs(smoke)
    repeats = 1 if smoke else 3
    cpus = _cpu_count()
    with tempfile.TemporaryDirectory() as root:
        set_record_sink(root)
        try:
            # recording warm-up: >= 5 execute records per method so the
            # constructor-time refresh fits all three coefficients (the
            # pool is discarded after — both timed services start equal)
            with ExecutionService(
                backend, jobs=2, shard_planner="count"
            ) as warmup:
                for _ in range(3):
                    warmup.run_jobs(jobs)
            count_service = ExecutionService(
                backend, jobs=2, shard_planner="count"
            )
            cost_service = ExecutionService(backend, jobs=2)
        finally:
            set_record_sink(None)
    assert cost_service.calibration is not None, (
        "calibration auto-refresh found no usable records"
    )
    try:
        count_service.run_jobs(jobs)  # warm pool, caches, propagators
        count_seconds, (count_results, count_meta) = _best_of(
            lambda: count_service.run_jobs(jobs), repeats
        )
    finally:
        count_service.shutdown()
    try:
        cost_service.run_jobs(jobs)
        cost_seconds, (cost_results, cost_meta) = _best_of(
            lambda: cost_service.run_jobs(jobs), repeats
        )
    finally:
        cost_service.shutdown()
    with ExecutionService(backend, jobs=1) as inline_service:
        inline_results, _ = inline_service.run_jobs(jobs)

    assert count_meta["scheduler"]["planner"] == "count"
    assert cost_meta["scheduler"]["planner"] == "cost"
    assert cost_meta["scheduler"]["calibrated"] is True
    for cost_exp, count_exp, inline_exp in zip(
        cost_results, count_results, inline_results
    ):
        assert (
            pickle.dumps(cost_exp)
            == pickle.dumps(count_exp)
            == pickle.dumps(inline_exp)
        ), "shard planning changed results — the invariant is broken"

    speedup = count_seconds / cost_seconds
    RESULTS["cost_aware_vs_count_heterogeneous"] = {
        "count_ms": round(count_seconds * 1e3, 2),
        "cost_ms": round(cost_seconds * 1e3, 2),
        "speedup_cost_vs_count": round(speedup, 2),
        "workers": 2,
        "job_mix": mix,
        "calibrated": cost_meta["scheduler"]["calibrated"],
        "shard_imbalance": {
            "count": count_meta["scheduler"].get("shard_imbalance"),
            "cost": cost_meta["scheduler"].get("shard_imbalance"),
        },
        "note": (
            "cheap-first/heavy-last mixed-method batch on 2 workers; "
            "byte-identical results under both planners and jobs=1; "
            "speedup needs >= 2 real CPUs (ceiling ~2x when the heavy "
            "tail dominates)"
        ),
    }
    _flush()
    print(
        f"cost-aware vs count: count {count_seconds * 1e3:.1f} ms -> "
        f"cost {cost_seconds * 1e3:.1f} ms ({speedup:.2f}x, "
        f"imbalance {count_meta['scheduler'].get('shard_imbalance')} -> "
        f"{cost_meta['scheduler'].get('shard_imbalance')})"
    )
    if cpus >= 2:
        assert speedup >= 1.3, (
            f"expected the cost-aware plan to beat count-based by "
            f">= 1.3x on a {cpus}-CPU machine, got {speedup:.2f}x"
        )
    else:
        print(
            "(single-CPU machine: speedup assertion skipped, "
            "curve recorded for multi-core CI)"
        )


def main(argv=None):
    import argparse

    global OUTPUT
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI quick mode: the cost-aware scheduler benchmark only, "
        "reduced batch, single repeat; writes to a scratch file unless "
        "--output is given",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="override the result path (smoke mode defaults to a "
        "temp-dir scratch file so partial runs never clobber the "
        "tracked BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        OUTPUT = args.output or (
            Path(tempfile.gettempdir()) / "BENCH_service.smoke.json"
        )
        test_bench_cost_aware_vs_count_heterogeneous(smoke=True)
        print(f"smoke ok; results in {OUTPUT}")
        return
    if args.output is not None:
        OUTPUT = args.output
    test_bench_worker_scaling()
    test_bench_store_replay()
    test_bench_trajectory_fanout()
    test_bench_fault_recovery()
    test_bench_cost_aware_vs_count_heterogeneous()
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
